//! The engine facade: the one-stop entry point for running a workflow.
//!
//! ```no_run
//! # use confluence_core::actors::{Collector, VecSource};
//! # use confluence_core::graph::WorkflowBuilder;
//! # use confluence_core::window::WindowSpec;
//! # use confluence_core::Token;
//! use confluence_core::engine::Engine;
//! use confluence_core::director::sdf::SdfDirector;
//!
//! # let collector = Collector::new();
//! # let mut b = WorkflowBuilder::new("demo");
//! # let s = b.add_actor("src", VecSource::new(vec![Token::Int(1)]));
//! # let k = b.add_actor("sink", collector.actor());
//! # b.connect_windowed(s, "out", k, "in", WindowSpec::each_event()).unwrap();
//! # let workflow = b.build().unwrap();
//! let mut engine = Engine::new(workflow).with_director(SdfDirector::new());
//! let report = engine.run().unwrap();
//! let metrics = engine.snapshot();
//! println!("{}", metrics.render_table());
//! println!("{}", metrics.to_prometheus());
//! ```
//!
//! [`Engine`] owns the workflow, a director (thread-based PNCWF by
//! default), and a [`MetricsRecorder`]; every run is instrumented so
//! [`Engine::snapshot`] always has per-actor statistics to report.
//! [`Director::run`] remains available as the thin un-instrumented path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::channel::ChannelPolicy;
use crate::director::pool::PoolDirector;
use crate::director::pool_policy::PoolPolicy;
use crate::director::threaded::ThreadedDirector;
use crate::director::{Director, RunReport};
use crate::error::Result;
use crate::graph::Workflow;
use crate::telemetry::{
    FireRecord, MetricsRecorder, MetricsSnapshot, MultiObserver, Observer, RunControl, RunPhase,
    Telemetry, TraceReport, Tracer,
};
use crate::time::{Micros, Timestamp};

/// A bound on how far [`Engine::run_until`] lets a run progress before
/// requesting a cooperative stop. Counters are evaluated against this
/// run's activity only, not totals accumulated over earlier runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCondition {
    /// Stop after this many successful firings.
    Firings(u64),
    /// Stop after this many channel deliveries.
    EventsRouted(u64),
    /// Stop once director time has advanced this far past run start.
    Elapsed(Micros),
}

/// Observer that trips a [`RunControl`] when a [`StopCondition`] is met.
struct StopWatcher {
    condition: StopCondition,
    control: Arc<RunControl>,
    fires: AtomicU64,
    routed: AtomicU64,
    started: AtomicU64,
}

impl StopWatcher {
    fn new(condition: StopCondition, control: Arc<RunControl>) -> Self {
        StopWatcher {
            condition,
            control,
            fires: AtomicU64::new(0),
            routed: AtomicU64::new(0),
            started: AtomicU64::new(0),
        }
    }

    fn check_elapsed(&self, at: Timestamp) {
        if let StopCondition::Elapsed(limit) = self.condition {
            let started = Timestamp(self.started.load(Ordering::Relaxed));
            if at.since(started) >= limit {
                self.control.request_stop();
            }
        }
    }
}

impl Observer for StopWatcher {
    fn on_run_phase(&self, phase: RunPhase, at: Timestamp) {
        if phase == RunPhase::Start {
            self.started.store(at.as_micros(), Ordering::Relaxed);
        }
    }

    fn on_fire_end(&self, record: &FireRecord) {
        if record.fired {
            let n = self.fires.fetch_add(1, Ordering::Relaxed) + 1;
            if let StopCondition::Firings(limit) = self.condition {
                if n >= limit {
                    self.control.request_stop();
                }
            }
        }
        self.check_elapsed(record.ended);
    }

    fn on_route(&self, _from: crate::graph::ActorId, delivered: u64, at: Timestamp) {
        let n = self.routed.fetch_add(delivered, Ordering::Relaxed) + delivered;
        if let StopCondition::EventsRouted(limit) = self.condition {
            if n >= limit {
                self.control.request_stop();
            }
        }
        self.check_elapsed(at);
    }
}

/// Declarative execution configuration, applied in one step with
/// [`Engine::configure`]. Folds what used to be a scattered `with_*`
/// chain — worker count, pool scheduling policy, and the workflow-wide
/// channel policy — into a single value that can be built, stored, and
/// passed around:
///
/// ```ignore
/// let engine = Engine::new(workflow).configure(
///     ExecConfig::new()
///         .workers(4)
///         .channel_policy(ChannelPolicy::bounded(1024, OnFull::Block)),
/// );
/// ```
///
/// Setting `workers` or a pool policy selects the pooled work-stealing
/// director; a config with neither leaves the current director in place.
#[derive(Default)]
pub struct ExecConfig {
    workers: Option<usize>,
    pool_policy: Option<Arc<dyn PoolPolicy>>,
    channel_policy: Option<ChannelPolicy>,
}

impl ExecConfig {
    /// An empty configuration: applying it changes nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run on the pooled work-stealing director with `n` worker threads.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Order the pooled director's ready queues by `policy` (see
    /// [`pool_policy`](crate::director::pool_policy): FIFO, Rate-Based,
    /// EDF on wave origins, or stride-scheduled quantum allotments).
    pub fn pool_policy(self, policy: impl PoolPolicy + 'static) -> Self {
        self.pool_policy_arc(Arc::new(policy))
    }

    /// Shared-handle variant of [`ExecConfig::pool_policy`], for policies
    /// chosen at runtime.
    pub fn pool_policy_arc(mut self, policy: Arc<dyn PoolPolicy>) -> Self {
        self.pool_policy = Some(policy);
        self
    }

    /// Workflow-wide channel capacity policy (bounded queues with
    /// backpressure). Ports with an explicit per-port policy keep their
    /// override.
    pub fn channel_policy(mut self, policy: ChannelPolicy) -> Self {
        self.channel_policy = Some(policy);
        self
    }
}

/// The redesigned run API: owns a workflow plus a director and executes
/// instrumented runs. Build with [`Engine::new`], configure with
/// [`Engine::configure`] / [`Engine::with_director`] /
/// [`Engine::with_observer`], then call [`Engine::run`] or
/// [`Engine::run_until`]; [`Engine::snapshot`] exposes the accumulated
/// [`MetricsSnapshot`] at any point.
pub struct Engine {
    workflow: Workflow,
    director: Box<dyn Director>,
    extra_observers: Vec<Arc<dyn Observer>>,
    recorder: Arc<MetricsRecorder>,
    instrumented: bool,
    /// Pool configuration memo: `with_workers`/`with_pool_policy` compose
    /// (either order) by rebuilding one `PoolDirector` from both fields.
    /// Cleared when an explicit director is installed.
    pool_workers: Option<usize>,
    pool_policy: Option<Arc<dyn PoolPolicy>>,
    tracer: Option<Arc<Tracer>>,
}

/// The handle a fully-configured [`Engine`] builder chain yields; it *is*
/// the engine — named separately so call sites read as "handle to a run".
pub type RunHandle = Engine;

impl Engine {
    /// An engine executing `workflow` under the default thread-based
    /// continuous-workflow director.
    pub fn new(workflow: Workflow) -> Self {
        let recorder = Arc::new(MetricsRecorder::for_workflow(&workflow));
        Engine {
            workflow,
            director: Box::new(ThreadedDirector::new()),
            extra_observers: Vec::new(),
            recorder,
            instrumented: false,
            pool_workers: None,
            pool_policy: None,
            tracer: None,
        }
    }

    /// Replace the director (any model of computation implementing
    /// [`Director`]).
    pub fn with_director(mut self, director: impl Director + 'static) -> RunHandle {
        self.director = Box::new(director);
        self.instrumented = false;
        self.pool_workers = None;
        self.pool_policy = None;
        self
    }

    /// Boxed-director variant of [`Engine::with_director`], for directors
    /// chosen at runtime.
    pub fn with_boxed_director(mut self, director: Box<dyn Director>) -> RunHandle {
        self.director = director;
        self.instrumented = false;
        self.pool_workers = None;
        self.pool_policy = None;
        self
    }

    /// Apply a declarative [`ExecConfig`] in one step: worker count, pool
    /// scheduling policy, and the workflow-wide channel policy. This is
    /// the preferred configuration path; the individual `with_*` methods
    /// below are thin wrappers kept for compatibility.
    pub fn configure(mut self, config: ExecConfig) -> RunHandle {
        if let Some(policy) = config.channel_policy {
            self.workflow.set_default_channel_policy(policy);
        }
        let reselect = config.workers.is_some() || config.pool_policy.is_some();
        if let Some(workers) = config.workers {
            self.pool_workers = Some(workers);
        }
        if let Some(policy) = config.pool_policy {
            self.pool_policy = Some(policy);
        }
        if reselect {
            self.rebuild_pool();
        }
        self
    }

    /// Execute on the pooled work-stealing director with `workers` worker
    /// threads. Composes with [`Engine::with_pool_policy`] in either
    /// order.
    ///
    /// Deprecated in favor of [`Engine::configure`] with
    /// [`ExecConfig::workers`].
    pub fn with_workers(self, workers: usize) -> RunHandle {
        self.configure(ExecConfig::new().workers(workers))
    }

    /// Execute on the pooled work-stealing director with its ready queues
    /// ordered by `policy` (see
    /// [`pool_policy`](crate::director::pool_policy): FIFO, Rate-Based,
    /// EDF on wave origins, or stride-scheduled quantum allotments).
    /// Composes with [`Engine::with_workers`] in either order.
    ///
    /// Deprecated in favor of [`Engine::configure`] with
    /// [`ExecConfig::pool_policy`].
    pub fn with_pool_policy(self, policy: impl PoolPolicy + 'static) -> RunHandle {
        self.configure(ExecConfig::new().pool_policy(policy))
    }

    /// Shared-handle variant of [`Engine::with_pool_policy`], for policies
    /// chosen at runtime.
    ///
    /// Deprecated in favor of [`Engine::configure`] with
    /// [`ExecConfig::pool_policy_arc`].
    pub fn with_pool_policy_arc(self, policy: Arc<dyn PoolPolicy>) -> RunHandle {
        self.configure(ExecConfig::new().pool_policy_arc(policy))
    }

    /// Reinstall the pool director from the worker/policy memo.
    fn rebuild_pool(&mut self) {
        let mut pool = PoolDirector::new();
        if let Some(workers) = self.pool_workers {
            pool = pool.with_workers(workers);
        }
        if let Some(policy) = &self.pool_policy {
            pool = pool.with_policy_arc(policy.clone());
        }
        self.director = Box::new(pool);
        self.instrumented = false;
    }

    /// Attach an additional [`Observer`]; hooks fan out to every attached
    /// observer plus the engine's own recorder.
    pub fn with_observer(mut self, observer: Arc<dyn Observer>) -> RunHandle {
        self.extra_observers.push(observer);
        self
    }

    /// Attach a wave-lineage [`Tracer`]; it observes every subsequent run
    /// and [`Engine::trace_report`] exposes the recorded traces. An
    /// enabled tracer turns on the fine-grained per-event hooks, so only
    /// attach one when the lineage detail is wanted.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> RunHandle {
        self.extra_observers.push(tracer.clone() as Arc<dyn Observer>);
        self.tracer = Some(tracer);
        self
    }

    /// The tracer attached via [`Engine::with_tracer`], if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.as_ref()
    }

    /// The traces recorded so far by the attached tracer (`None` without
    /// [`Engine::with_tracer`]).
    pub fn trace_report(&self) -> Option<TraceReport> {
        self.tracer.as_ref().map(|t| t.report())
    }

    /// Set the workflow-wide channel capacity policy (bounded queues with
    /// backpressure). Ports given an explicit policy through
    /// [`WorkflowBuilder::set_channel_policy`]
    /// (crate::graph::WorkflowBuilder::set_channel_policy) keep their
    /// override.
    ///
    /// Deprecated in favor of [`Engine::configure`] with
    /// [`ExecConfig::channel_policy`].
    pub fn with_channel_policy(self, policy: ChannelPolicy) -> RunHandle {
        self.configure(ExecConfig::new().channel_policy(policy))
    }

    /// The metrics recorder backing [`Engine::snapshot`].
    pub fn recorder(&self) -> &Arc<MetricsRecorder> {
        &self.recorder
    }

    /// The workflow being executed.
    pub fn workflow(&self) -> &Workflow {
        &self.workflow
    }

    /// Point-in-time metrics accumulated over every run so far. Under the
    /// threaded director this is safe to call from another thread mid-run
    /// (via a clone of [`Engine::recorder`]).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.recorder.snapshot()
    }

    /// Run the workflow to quiescence. The returned [`RunReport`] is the
    /// recorder's view of the run when the director honors
    /// instrumentation, and the director's own accounting otherwise.
    pub fn run(&mut self) -> Result<RunReport> {
        self.run_inner(None)
    }

    /// Run until quiescence *or* until `stop` is met, whichever comes
    /// first. Stops are cooperative: the director winds down cleanly at
    /// the next firing boundary, so slightly more work than the bound may
    /// be performed.
    pub fn run_until(&mut self, stop: StopCondition) -> Result<RunReport> {
        self.run_inner(Some(stop))
    }

    fn run_inner(&mut self, stop: Option<StopCondition>) -> Result<RunReport> {
        let control = Arc::new(RunControl::new());
        let mut observers: Vec<Arc<dyn Observer>> =
            vec![self.recorder.clone() as Arc<dyn Observer>];
        observers.extend(self.extra_observers.iter().cloned());
        let before = self.recorder.snapshot();
        if let Some(condition) = stop {
            observers.push(Arc::new(StopWatcher::new(condition, control.clone())));
        }
        let telemetry = Telemetry {
            observer: Arc::new(MultiObserver::new(observers)),
            control,
        };
        self.instrumented = self.director.instrument(telemetry);
        let director_report = self.director.run(&mut self.workflow)?;
        if !self.instrumented {
            return Ok(director_report);
        }
        // The recorder accumulates across runs; report this run's delta.
        let after = self.recorder.snapshot();
        Ok(RunReport {
            firings: after.total_fires() - before.total_fires(),
            events_routed: after.events_routed - before.events_routed,
            elapsed: director_report.elapsed,
        })
    }

    /// Whether the current director honored instrumentation on the last
    /// run (`false` before the first run or for third-party directors
    /// without telemetry support).
    pub fn is_instrumented(&self) -> bool {
        self.instrumented
    }

    /// Take the workflow back out of the engine.
    pub fn into_workflow(self) -> Workflow {
        self.workflow
    }
}
