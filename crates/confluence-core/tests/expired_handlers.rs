//! End-to-end tests of the expired-items queues (paper §2.1): events that
//! slide out of a window are pushed to an expired-items queue which is
//! optionally handled by another workflow activity.

use confluence_core::actors::{Collector, VecSource};
use confluence_core::director::ddf::DdfDirector;
use confluence_core::director::threaded::ThreadedDirector;
use confluence_core::director::Director;
use confluence_core::graph::WorkflowBuilder;
use confluence_core::token::Token;
use confluence_core::window::WindowSpec;

/// src → agg (tumbling 3-windows, delete_used) with agg.in's expired
/// events handled by a dedicated audit sink.
fn build(
) -> (confluence_core::graph::Workflow, Collector, Collector) {
    let out = Collector::new();
    let audit = Collector::new();
    let mut b = WorkflowBuilder::new("expired");
    let s = b.add_actor("src", VecSource::new((0..9).map(Token::Int).collect()));
    let agg = b.add_actor(
        "agg",
        confluence_core::actors::FnActor::new(
            confluence_core::actor::IoSignature::transform("in", "out"),
            |w, emit| {
                let mut sum = 0;
                for t in w.tokens() {
                    sum += t.as_int()?;
                }
                emit(0, Token::Int(sum));
                Ok(())
            },
        ),
    );
    let sink = b.add_actor("sink", out.actor());
    let auditor = b.add_actor("audit", audit.actor());
    b.connect_windowed(s, "out", agg, "in", WindowSpec::tuples(3, 3).delete_used(true))
        .unwrap();
    b.connect(agg, "out", sink, "in").unwrap();
    // The audit actor has no channel into it: it is fed purely by the
    // expired-items queue of agg's input port.
    b.set_expired_handler(agg, "in", auditor, "in").unwrap();
    (b.build().unwrap(), out, audit)
}

#[test]
fn expired_events_reach_the_handler_under_ddf() {
    let (mut wf, out, audit) = build();
    DdfDirector::new().run(&mut wf).unwrap();
    // Three full windows: sums 0+1+2, 3+4+5, 6+7+8.
    assert_eq!(
        out.tokens(),
        vec![Token::Int(3), Token::Int(12), Token::Int(21)]
    );
    // Every consumed event eventually expires into the audit activity.
    let mut audited: Vec<i64> = audit.tokens().iter().map(|t| t.as_int().unwrap()).collect();
    audited.sort_unstable();
    assert_eq!(audited, (0..9).collect::<Vec<_>>());
}

#[test]
fn expired_events_reach_the_handler_under_threads() {
    let (mut wf, out, audit) = build();
    ThreadedDirector::new().run(&mut wf).unwrap();
    assert_eq!(out.len(), 3);
    let mut audited: Vec<i64> = audit.tokens().iter().map(|t| t.as_int().unwrap()).collect();
    audited.sort_unstable();
    assert_eq!(audited, (0..9).collect::<Vec<_>>());
}

#[test]
fn sliding_windows_expire_only_slid_out_events() {
    // {Size: 2, Step: 1} without delete_used: event k expires once the
    // window start passes it — every event except the very last.
    let out = Collector::new();
    let audit = Collector::new();
    let mut b = WorkflowBuilder::new("sliding-expired");
    let s = b.add_actor("src", VecSource::new((0..5).map(Token::Int).collect()));
    let pass = b.add_actor(
        "pass",
        confluence_core::actors::FnActor::new(
            confluence_core::actor::IoSignature::transform("in", "out"),
            |w, emit| {
                emit(0, Token::Int(w.len() as i64));
                Ok(())
            },
        ),
    );
    let sink = b.add_actor("sink", out.actor());
    let auditor = b.add_actor("audit", audit.actor());
    b.connect_windowed(s, "out", pass, "in", WindowSpec::tuples(2, 1))
        .unwrap();
    b.connect(pass, "out", sink, "in").unwrap();
    b.set_expired_handler(pass, "in", auditor, "in").unwrap();
    let mut wf = b.build().unwrap();
    DdfDirector::new().run(&mut wf).unwrap();
    let mut audited: Vec<i64> = audit.tokens().iter().map(|t| t.as_int().unwrap()).collect();
    audited.sort_unstable();
    assert_eq!(audited, (0..5).collect::<Vec<_>>(), "all expire by close");
}

#[test]
fn builder_rejects_unknown_handler_ports() {
    let mut b = WorkflowBuilder::new("bad");
    let s = b.add_actor("src", VecSource::new(vec![]));
    let k = b.add_actor("sink", Collector::new().actor());
    b.connect(s, "out", k, "in").unwrap();
    assert!(b
        .set_expired_handler(k, "nope", s, "in")
        .is_err());
    assert!(b
        .set_expired_handler(k, "in", s, "nope")
        .is_err());
}
