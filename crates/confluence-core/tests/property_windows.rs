//! Property tests of the window operator's invariants.
//!
//! The window operator is the heart of the CWf model: these properties
//! pin down event conservation (nothing lost, nothing duplicated beyond
//! what the size/step overlap dictates) across arbitrary streams, specs,
//! and group keys.

use proptest::prelude::*;

use confluence_core::event::CwEvent;
use confluence_core::time::{Micros, Timestamp};
use confluence_core::token::Token;
use confluence_core::window::{GroupBy, WindowOperator, WindowSpec};

/// A simple keyed event stream: (group 0..groups, payload id).
fn stream(max_len: usize, groups: i64) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0..groups, 0..1_000_000i64), 0..max_len)
}

fn ev(group: i64, id: i64, ts: u64) -> CwEvent {
    CwEvent::external(
        Token::record().field("g", group).field("id", id).build(),
        Timestamp(ts),
    )
}

proptest! {
    /// Tuple windows with delete_used: every event appears in exactly one
    /// emitted window (full or flushed), for any size/grouping with
    /// step ≤ size. (Step > size is hopping-window *sampling*: the gap
    /// events are deliberately expired unseen, so no partition there.)
    #[test]
    fn consuming_tuple_windows_partition_the_stream(
        events in stream(200, 4),
        size in 1usize..6,
        step in 1usize..6,
    ) {
        prop_assume!(step <= size);
        let spec = WindowSpec::tuples(size, step)
            .group_by(GroupBy::fields(&["g"]))
            .delete_used(true);
        let mut op = WindowOperator::new(spec).unwrap();
        for (i, (g, id)) in events.iter().enumerate() {
            op.push(ev(*g, *id, i as u64), Timestamp(i as u64)).unwrap();
        }
        op.flush(Timestamp(events.len() as u64 + 1));
        let mut seen: Vec<i64> = Vec::new();
        while let Some(w) = op.pop_window() {
            for t in w.tokens() {
                seen.push(t.int_field("id").unwrap());
            }
        }
        let mut expected: Vec<i64> = events.iter().map(|(_, id)| *id).collect();
        seen.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(seen, expected);
        prop_assert_eq!(op.pending_events(), 0);
    }

    /// Sliding tuple windows (step ≤ size, no delete): every full window
    /// has exactly `size` events, consecutive windows of one group overlap
    /// by `size − step`, and each group's events appear in arrival order.
    #[test]
    fn sliding_windows_have_exact_size_and_order(
        events in stream(200, 3),
        size in 2usize..6,
        step in 1usize..3,
    ) {
        prop_assume!(step <= size);
        let spec = WindowSpec::tuples(size, step).group_by(GroupBy::fields(&["g"]));
        let mut op = WindowOperator::new(spec).unwrap();
        let mut windows: Vec<(Token, Vec<i64>)> = Vec::new();
        for (i, (g, id)) in events.iter().enumerate() {
            op.push(ev(*g, *id, i as u64), Timestamp(i as u64)).unwrap();
            while let Some(w) = op.pop_window() {
                let ids = w.tokens().map(|t| t.int_field("id").unwrap()).collect();
                windows.push((w.group.clone(), ids));
            }
        }
        // Per-group reference: the arrival order of that group's ids.
        for g in 0..3i64 {
            let arrivals: Vec<i64> = events
                .iter()
                .filter(|(eg, _)| *eg == g)
                .map(|(_, id)| *id)
                .collect();
            let key = Token::record().field("g", g).build();
            let group_windows: Vec<&Vec<i64>> = windows
                .iter()
                .filter(|(k, _)| *k == key)
                .map(|(_, ids)| ids)
                .collect();
            for (w_idx, ids) in group_windows.iter().enumerate() {
                prop_assert_eq!(ids.len(), size);
                let start = w_idx * step;
                prop_assert_eq!(ids.as_slice(), &arrivals[start..start + size]);
            }
        }
    }

    /// Tumbling time windows: every event lands in the window of its own
    /// timestamp bucket; no event is lost after a final flush.
    #[test]
    fn tumbling_time_windows_bucket_by_timestamp(
        // (group, id, timestamp) with timestamps in a small range so
        // buckets collide interestingly.
        raw in prop::collection::vec((0..3i64, 0..1_000_000i64, 0u64..5_000), 0..150),
        width in 100u64..1_000,
    ) {
        // The operator expects near-ordered arrivals (it expires late
        // events); feed it in timestamp order.
        let mut events = raw;
        events.sort_by_key(|(_, _, ts)| *ts);
        let spec = WindowSpec::time(Micros(width), Micros(width))
            .group_by(GroupBy::fields(&["g"]));
        let mut op = WindowOperator::new(spec).unwrap();
        for (g, id, ts) in &events {
            op.push(ev(*g, *id, *ts), Timestamp(*ts)).unwrap();
        }
        op.flush(Timestamp(1_000_000));
        let mut got: Vec<(i64, u64)> = Vec::new(); // (id, bucket)
        while let Some(w) = op.pop_window() {
            // All events of one window share a bucket.
            let buckets: Vec<u64> = w
                .events
                .iter()
                .map(|e| e.timestamp.as_micros() / width)
                .collect();
            for b in &buckets {
                prop_assert_eq!(*b, buckets[0]);
            }
            for e in &w.events {
                got.push((
                    e.token.int_field("id").unwrap(),
                    e.timestamp.as_micros() / width,
                ));
            }
        }
        let mut expected: Vec<(i64, u64)> = events
            .iter()
            .map(|(_, id, ts)| (*id, ts / width))
            .collect();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Formation timeouts never lose events: with any timeout, pushing
    /// then polling far in the future flushes everything exactly once.
    #[test]
    fn timeouts_conserve_events(
        events in stream(100, 2),
        size in 2usize..8,
        timeout in 1u64..500,
    ) {
        let spec = WindowSpec::tuples(size, size)
            .group_by(GroupBy::fields(&["g"]))
            .with_timeout(Micros(timeout));
        let mut op = WindowOperator::new(spec).unwrap();
        for (i, (g, id)) in events.iter().enumerate() {
            op.push(ev(*g, *id, i as u64), Timestamp(i as u64)).unwrap();
            // Occasionally poll mid-stream.
            if i % 7 == 0 {
                op.poll(Timestamp(i as u64));
            }
        }
        op.poll(Timestamp(1_000_000));
        let mut count = 0usize;
        while let Some(w) = op.pop_window() {
            count += w.len();
        }
        prop_assert_eq!(count, events.len());
        prop_assert_eq!(op.pending_events(), 0);
    }

    /// The deadline index agrees with polling reality: if `next_deadline`
    /// says nothing is due, polling must produce nothing; polling at the
    /// deadline must produce at least one window.
    #[test]
    fn deadline_index_is_sound_and_live(
        events in stream(60, 2),
        width in 50u64..300,
    ) {
        let spec = WindowSpec::time(Micros(width), Micros(width))
            .group_by(GroupBy::fields(&["g"]));
        let mut op = WindowOperator::new(spec).unwrap();
        for (i, (g, id)) in events.iter().enumerate() {
            let ts = (i as u64) * 10;
            op.push(ev(*g, *id, ts), Timestamp(ts)).unwrap();
            if let Some(d) = op.next_deadline() {
                // Polling strictly before the deadline yields nothing.
                prop_assert_eq!(op.poll(Timestamp(d.as_micros() - 1)), 0);
                // Polling at the deadline yields something.
                let n = op.poll(d);
                prop_assert!(n > 0, "deadline {d:?} did not fire");
                while op.pop_window().is_some() {}
            }
        }
    }
}
