//! Property tests of wave-tag algebra and wave-completion tracking.

use proptest::prelude::*;

use confluence_core::time::Timestamp;
use confluence_core::wave::{WaveTag, WaveTracker};

/// A recipe for a random wave tree: at each level, how many children each
/// expanded node gets (bounded to keep trees small).
#[derive(Debug, Clone)]
struct TreeSpec {
    /// Children of the root firing.
    root_children: u8,
    /// For each root child index (cyclically), how many grandchildren it
    /// spawns (0 = stays a leaf).
    expansion: Vec<u8>,
}

fn tree_spec() -> impl Strategy<Value = TreeSpec> {
    (1u8..6, prop::collection::vec(0u8..4, 1..6)).prop_map(|(root_children, expansion)| TreeSpec {
        root_children,
        expansion,
    })
}

/// Materialize the leaves a consumer would observe for a spec.
fn leaves(spec: &TreeSpec) -> Vec<WaveTag> {
    let root = WaveTag::external(Timestamp(1));
    let mut out = Vec::new();
    for i in 1..=spec.root_children {
        let child = root.child(i as u32, i == spec.root_children);
        let n_grand = spec.expansion[(i as usize - 1) % spec.expansion.len()];
        if n_grand == 0 {
            out.push(child);
        } else {
            for j in 1..=n_grand {
                out.push(child.child(j as u32, j == n_grand));
            }
        }
    }
    out
}

proptest! {
    /// Tag ordering is a total order consistent with lexicographic paths.
    #[test]
    fn ordering_is_total_and_antisymmetric(spec in tree_spec()) {
        let tags = leaves(&spec);
        for a in &tags {
            for b in &tags {
                let ab = a.cmp(b);
                let ba = b.cmp(a);
                prop_assert_eq!(ab, ba.reverse());
                prop_assert_eq!(ab == std::cmp::Ordering::Equal, a == b);
            }
        }
    }

    /// A tracker fed every leaf of a wave — in any order — reports
    /// completion; fed any strict subset, it does not.
    #[test]
    fn tracker_complete_iff_all_leaves_seen(
        spec in tree_spec(),
        order in prop::collection::vec(0usize..64, 0..64),
        drop_idx in 0usize..64,
    ) {
        let mut tags = leaves(&spec);
        // Shuffle deterministically by the generated order.
        for (i, &swap) in order.iter().enumerate() {
            if !tags.is_empty() {
                let a = i % tags.len();
                let b = swap % tags.len();
                tags.swap(a, b);
            }
        }
        // All leaves → complete.
        let mut tr = WaveTracker::new();
        for t in &tags {
            tr.observe(t);
        }
        prop_assert!(tr.is_complete(), "all leaves observed");
        prop_assert_eq!(tr.observed(), tags.len());

        // Any one missing → incomplete.
        if tags.len() > 1 {
            let skip = drop_idx % tags.len();
            let mut tr = WaveTracker::new();
            for (i, t) in tags.iter().enumerate() {
                if i != skip {
                    tr.observe(t);
                }
            }
            prop_assert!(!tr.is_complete(), "missing leaf {skip} must block");
        }
    }

    /// Ancestry: the external tag is an ancestor of every leaf; no leaf is
    /// an ancestor of another leaf from a different branch.
    #[test]
    fn ancestry_laws(spec in tree_spec()) {
        let root = WaveTag::external(Timestamp(1));
        let tags = leaves(&spec);
        for t in &tags {
            prop_assert!(root.is_ancestor_of(t));
            prop_assert!(!t.is_ancestor_of(&root));
            prop_assert!(t.same_wave(&root));
        }
        for a in &tags {
            for b in &tags {
                if a != b && a.path()[0].index != b.path()[0].index {
                    prop_assert!(!a.is_ancestor_of(b));
                }
            }
        }
    }
}
