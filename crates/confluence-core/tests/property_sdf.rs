//! Property tests of the SDF balance-equation solver.

use proptest::prelude::*;

use confluence_core::actor::{Actor, FireContext, IoSignature, SdfRates};
use confluence_core::director::sdf::compile_schedule;
use confluence_core::error::Result;
use confluence_core::graph::WorkflowBuilder;

/// A rate-declaring pass-through actor.
struct Rated {
    consume: u32,
    produce: u32,
    source: bool,
}

impl Actor for Rated {
    fn signature(&self) -> IoSignature {
        if self.source {
            IoSignature::source("out")
        } else if self.produce == 0 {
            IoSignature::sink("in")
        } else {
            IoSignature::transform("in", "out")
        }
    }
    fn fire(&mut self, _ctx: &mut dyn FireContext) -> Result<()> {
        Ok(())
    }
    fn is_source(&self) -> bool {
        self.source
    }
    fn rates(&self) -> Option<SdfRates> {
        Some(SdfRates {
            consume: if self.source { vec![] } else { vec![self.consume] },
            produce: if self.produce == 0 { vec![] } else { vec![self.produce] },
        })
    }
}

proptest! {
    /// For any rate-labelled chain, the repetition vector satisfies the
    /// balance equations and is minimal (gcd 1).
    #[test]
    fn chain_repetitions_balance(rates in prop::collection::vec((1u32..7, 1u32..7), 1..6)) {
        // Build src →(p0,c1)→ a1 →(p1,c2)→ a2 → ... → sink.
        let mut b = WorkflowBuilder::new("chain");
        let mut prev = b.add_actor(
            "src",
            Rated { consume: 0, produce: rates[0].0, source: true },
        );
        for (i, window) in rates.windows(2).enumerate() {
            let a = b.add_actor(
                format!("a{i}"),
                Rated { consume: window[0].1, produce: window[1].0, source: false },
            );
            b.connect(prev, "out", a, "in").unwrap();
            prev = a;
        }
        let sink = b.add_actor(
            "sink",
            Rated { consume: rates[rates.len() - 1].1, produce: 0, source: false },
        );
        b.connect(prev, "out", sink, "in").unwrap();
        let wf = b.build().unwrap();

        let sched = compile_schedule(&wf).unwrap();
        // Balance on every channel: q[from]·produce == q[to]·consume.
        for ch in wf.channels() {
            let from = ch.from.actor.index();
            let to = ch.to.actor.index();
            let p = wf.node(ch.from.actor).peek_actor().unwrap().rates().unwrap().produce[ch.from.port] as u64;
            let c = wf.node(ch.to.actor).peek_actor().unwrap().rates().unwrap().consume[ch.to.port] as u64;
            prop_assert_eq!(
                sched.repetitions[from] * p,
                sched.repetitions[to] * c,
                "channel {}→{} unbalanced", from, to
            );
        }
        // Minimality.
        let g = sched.repetitions.iter().fold(0u64, |acc, &r| {
            fn gcd(a: u64, b: u64) -> u64 { if b == 0 { a } else { gcd(b, a % b) } }
            gcd(acc, r)
        });
        prop_assert_eq!(g, 1, "repetition vector not minimal: {:?}", sched.repetitions);
        // All positive.
        prop_assert!(sched.repetitions.iter().all(|&r| r > 0));
        // Order is a topological order of the chain.
        prop_assert_eq!(&sched.order, &(0..wf.actor_count()).collect::<Vec<_>>());
    }
}
