//! Cell values of the relational store.
//!
//! A deliberately small scalar universe (the Linear Road tables hold
//! integers, floats, and the occasional string), with total ordering and
//! hashing so values can key indexes, plus lossless conversion to and
//! from workflow [`Token`]s.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use confluence_core::error::{Error, Result};
use confluence_core::token::Token;

/// A scalar cell value.
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// SQL NULL.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Shared string.
    Str(Arc<str>),
}

/// Type tags for schema declarations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueType {
    /// Boolean column.
    Bool,
    /// Integer column.
    Int,
    /// Float column.
    Float,
    /// String column.
    Str,
}

impl Value {
    /// Build a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// The value's type, or `None` for NULL (NULL inhabits every type).
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(ValueType::Bool),
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Str(_) => Some(ValueType::Str),
        }
    }

    /// Whether this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer accessor.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(Error::Store(format!("expected Int, found {other}"))),
        }
    }

    /// Float accessor (widens Int).
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            other => Err(Error::Store(format!("expected Float, found {other}"))),
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(v) => Ok(*v),
            other => Err(Error::Store(format!("expected Bool, found {other}"))),
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(v) => Ok(v.as_ref()),
            other => Err(Error::Store(format!("expected Str, found {other}"))),
        }
    }

    /// Convert a workflow token to a cell value. Records and arrays are
    /// rejected (they are not scalars).
    pub fn from_token(token: &Token) -> Result<Value> {
        Ok(match token {
            Token::Unit => Value::Null,
            Token::Bool(b) => Value::Bool(*b),
            Token::Int(i) => Value::Int(*i),
            Token::Float(f) => Value::Float(*f),
            Token::Str(s) => Value::Str(s.clone()),
            other => {
                return Err(Error::Store(format!(
                    "non-scalar token {} cannot be stored",
                    other.type_name()
                )))
            }
        })
    }

    /// Convert back to a workflow token (NULL becomes Unit).
    pub fn to_token(&self) -> Token {
        match self {
            Value::Null => Token::Unit,
            Value::Bool(b) => Token::Bool(*b),
            Value::Int(i) => Token::Int(*i),
            Value::Float(f) => Token::Float(*f),
            Value::Str(s) => Token::Str(s.clone()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: NULL < Bool < numbers < Str; Int and Float compare
    /// numerically (total_cmp for NaN stability).
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float that compare equal must hash equal: hash the
            // f64 bit pattern of the numeric value.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

/// A row: one value per schema column, in column order.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn accessors_and_types() {
        assert_eq!(Value::Int(4).as_int().unwrap(), 4);
        assert_eq!(Value::Int(4).as_float().unwrap(), 4.0);
        assert_eq!(Value::Float(1.5).as_float().unwrap(), 1.5);
        assert!(Value::Bool(true).as_bool().unwrap());
        assert_eq!(Value::str("x").as_str().unwrap(), "x");
        assert!(Value::Null.is_null());
        assert!(Value::Null.value_type().is_none());
        assert_eq!(Value::Int(1).value_type(), Some(ValueType::Int));
        assert!(Value::str("x").as_int().is_err());
    }

    #[test]
    fn token_round_trip() {
        for t in [
            Token::Unit,
            Token::Bool(true),
            Token::Int(7),
            Token::Float(2.5),
            Token::str("hello"),
        ] {
            let v = Value::from_token(&t).unwrap();
            assert_eq!(v.to_token(), t);
        }
        assert!(Value::from_token(&Token::record().build()).is_err());
        assert!(Value::from_token(&Token::array(vec![])).is_err());
    }

    #[test]
    fn cross_type_numeric_equality_and_hash() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(h(&Value::Int(3)), h(&Value::Float(3.0)));
        assert_ne!(Value::Int(3), Value::Float(3.5));
    }

    #[test]
    fn total_order() {
        let mut v = vec![
            Value::str("a"),
            Value::Int(5),
            Value::Null,
            Value::Float(1.5),
            Value::Bool(true),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Float(1.5),
                Value::Int(5),
                Value::str("a"),
            ]
        );
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::str("x").to_string(), "'x'");
    }

    #[test]
    fn conversions() {
        let _: Value = 1i64.into();
        let _: Value = 1i32.into();
        let _: Value = 1.5f64.into();
        let _: Value = true.into();
        let _: Value = "s".into();
    }
}
