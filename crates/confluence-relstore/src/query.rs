//! A small query builder over tables: filter → project → order → limit.
//!
//! `select()` on [`Table`] answers predicate scans;
//! this layer adds the remaining relational conveniences the workflow
//! actors and tools want without writing row-plumbing by hand.

use confluence_core::error::{Error, Result};

use crate::expr::Expr;
use crate::store::Store;
use crate::table::Table;
use crate::value::{Row, Value};

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// A declarative query against one table.
#[derive(Debug, Clone)]
pub struct Query {
    table: String,
    filter: Option<Expr>,
    projection: Option<Vec<String>>,
    order_by: Option<(String, Order)>,
    limit: Option<usize>,
}

impl Query {
    /// Start a query over `table`.
    pub fn from(table: &str) -> Query {
        Query {
            table: table.to_string(),
            filter: None,
            projection: None,
            order_by: None,
            limit: None,
        }
    }

    /// Restrict to rows matching `pred` (ANDed with any previous filter).
    pub fn filter(mut self, pred: Expr) -> Query {
        self.filter = Some(match self.filter {
            Some(existing) => existing.and(pred),
            None => pred,
        });
        self
    }

    /// Keep only the named columns, in the given order.
    pub fn project(mut self, columns: &[&str]) -> Query {
        self.projection = Some(columns.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Sort by one column.
    pub fn order_by(mut self, column: &str, order: Order) -> Query {
        self.order_by = Some((column.to_string(), order));
        self
    }

    /// Return at most `n` rows (applied after sorting).
    pub fn limit(mut self, n: usize) -> Query {
        self.limit = Some(n);
        self
    }

    /// Execute against a store.
    pub fn execute(&self, store: &Store) -> Result<Vec<Row>> {
        self.execute_on(store.table(&self.table)?)
    }

    /// Execute against a table directly.
    pub fn execute_on(&self, table: &Table) -> Result<Vec<Row>> {
        let schema = table.schema();
        let mut rows = self.fetch_ordered(table)?;
        if let Some(n) = self.limit {
            rows.truncate(n);
        }
        if let Some(cols) = &self.projection {
            let idxs: Vec<usize> = cols
                .iter()
                .map(|c| schema.column_index(c))
                .collect::<Result<_>>()?;
            rows = rows
                .into_iter()
                .map(|r| idxs.iter().map(|&i| r[i].clone()).collect())
                .collect();
        }
        Ok(rows)
    }

    /// Matching rows in the requested sort order.
    ///
    /// Fast path: with both `order_by` and `limit` set, the top-k rows are
    /// streamed straight off an ordered index whose range column is the
    /// sort column (and whose equality columns the filter binds), skipping
    /// the materialize-everything-then-sort step. Falls back to
    /// select + stable sort when no index fits; both paths produce
    /// identical output, including tie order.
    fn fetch_ordered(&self, table: &Table) -> Result<Vec<Row>> {
        let schema = table.schema();
        if let (Some((column, order)), Some(n)) = (&self.order_by, self.limit) {
            // Validate the sort column up front so the fast path reports
            // unknown columns exactly like the sort path.
            schema.column_index(column)?;
            let desc = matches!(order, Order::Desc);
            if let Some(rows) = table.top_k(self.filter.as_ref(), column, desc, n)? {
                return Ok(rows);
            }
        }
        let mut rows = table.select(self.filter.as_ref())?;
        if let Some((column, order)) = &self.order_by {
            let idx = schema.column_index(column)?;
            rows.sort_by(|a, b| {
                let ord = a[idx].cmp(&b[idx]);
                match order {
                    Order::Asc => ord,
                    Order::Desc => ord.reverse(),
                }
            });
        }
        Ok(rows)
    }

    /// Execute and return the single value of a one-column, one-row result
    /// (`None` when no row matched). Errors if the result is wider.
    pub fn scalar(&self, store: &Store) -> Result<Option<Value>> {
        let rows = self.execute(store)?;
        match rows.first() {
            None => Ok(None),
            Some(row) if row.len() == 1 => Ok(Some(row[0].clone())),
            Some(row) => Err(Error::Store(format!(
                "scalar() on a {}-column result",
                row.len()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::schema::Schema;
    use crate::value::ValueType;

    fn store() -> Store {
        let mut s = Store::new();
        s.create_table(
            "t",
            Schema::builder()
                .column("id", ValueType::Int)
                .column("g", ValueType::Int)
                .column("v", ValueType::Float)
                .primary_key(&["id"])
                .build()
                .unwrap(),
        )
        .unwrap();
        for i in 0..10i64 {
            s.table_mut("t")
                .unwrap()
                .insert(vec![i.into(), (i % 3).into(), (i as f64 * 1.5).into()])
                .unwrap();
        }
        s
    }

    #[test]
    fn filter_project_order_limit() {
        let s = store();
        let rows = Query::from("t")
            .filter(col("g").eq(lit(1)))
            .order_by("v", Order::Desc)
            .limit(2)
            .project(&["id"])
            .execute(&s)
            .unwrap();
        // g == 1 → ids 1, 4, 7; descending v → 7, 4; limit 2.
        assert_eq!(rows, vec![vec![Value::Int(7)], vec![Value::Int(4)]]);
    }

    #[test]
    fn chained_filters_and() {
        let s = store();
        let rows = Query::from("t")
            .filter(col("g").eq(lit(0)))
            .filter(col("id").gt(lit(3)))
            .execute(&s)
            .unwrap();
        assert_eq!(rows.len(), 2, "ids 6 and 9");
    }

    #[test]
    fn ascending_order() {
        let s = store();
        let rows = Query::from("t")
            .order_by("id", Order::Asc)
            .limit(3)
            .project(&["id"])
            .execute(&s)
            .unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::Int(0)], vec![Value::Int(1)], vec![Value::Int(2)]]
        );
    }

    #[test]
    fn scalar_access() {
        let s = store();
        let v = Query::from("t")
            .filter(col("id").eq(lit(4)))
            .project(&["v"])
            .scalar(&s)
            .unwrap();
        assert_eq!(v, Some(Value::Float(6.0)));
        let none = Query::from("t")
            .filter(col("id").eq(lit(99)))
            .project(&["v"])
            .scalar(&s)
            .unwrap();
        assert_eq!(none, None);
        // Too wide.
        assert!(Query::from("t").filter(col("id").eq(lit(4))).scalar(&s).is_err());
    }

    #[test]
    fn ordered_index_top_k_matches_sort_path() {
        let mut s = store();
        s.table_mut("t")
            .unwrap()
            .create_ordered_index(&["g"], "v")
            .unwrap();
        // Same shape as `filter_project_order_limit`, now index-served.
        let rows = Query::from("t")
            .filter(col("g").eq(lit(1)))
            .order_by("v", Order::Desc)
            .limit(2)
            .project(&["id"])
            .execute(&s)
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(7)], vec![Value::Int(4)]]);
        // Residual (non-index) predicate still filters the stream.
        let rows = Query::from("t")
            .filter(col("g").eq(lit(1)).and(col("id").lt(lit(7))))
            .order_by("v", Order::Desc)
            .limit(2)
            .project(&["id"])
            .execute(&s)
            .unwrap();
        assert_eq!(rows, vec![vec![Value::Int(4)], vec![Value::Int(1)]]);
        // Missing partition → empty result, not an error.
        let rows = Query::from("t")
            .filter(col("g").eq(lit(9)))
            .order_by("v", Order::Asc)
            .limit(5)
            .execute(&s)
            .unwrap();
        assert!(rows.is_empty());
        // An index with no equality columns serves unfiltered top-k too.
        s.table_mut("t")
            .unwrap()
            .create_ordered_index(&[], "id")
            .unwrap();
        let rows = Query::from("t")
            .order_by("id", Order::Asc)
            .limit(3)
            .project(&["id"])
            .execute(&s)
            .unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::Int(0)], vec![Value::Int(1)], vec![Value::Int(2)]]
        );
        // Sorting by a non-indexed column falls back and still agrees.
        let via_sort = Query::from("t")
            .order_by("g", Order::Asc)
            .limit(4)
            .execute(&s)
            .unwrap();
        assert_eq!(via_sort.len(), 4);
    }

    #[test]
    fn unknown_table_and_columns_error() {
        let s = store();
        assert!(Query::from("nope").execute(&s).is_err());
        assert!(Query::from("t").project(&["zz"]).execute(&s).is_err());
        assert!(Query::from("t").order_by("zz", Order::Asc).execute(&s).is_err());
    }
}
