//! Predicate and scalar expressions over rows.
//!
//! A small expression AST — columns, literals, comparisons, boolean
//! connectives, arithmetic — rich enough to express the Linear Road toll
//! query's conditions (`LAV < 40 AND numOfCars > 50 AND seg BETWEEN ...`)
//! against a schema-resolved row.

use confluence_core::error::{Error, Result};

use crate::schema::Schema;
use crate::value::{Row, Value};

/// A scalar expression evaluated against one row.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A column reference (resolved by name at evaluation).
    Col(String),
    /// A literal value.
    Lit(Value),
    /// Comparison.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Logical AND.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR.
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// Arithmetic.
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    /// NULL test.
    IsNull(Box<Expr>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// Shorthand: column reference.
pub fn col(name: &str) -> Expr {
    Expr::Col(name.to_string())
}

/// Shorthand: literal.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Lit(v.into())
}

impl Expr {
    /// `self = other`
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Eq, Box::new(other))
    }
    /// `self <> other`
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Ne, Box::new(other))
    }
    /// `self < other`
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Lt, Box::new(other))
    }
    /// `self <= other`
    pub fn le(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Le, Box::new(other))
    }
    /// `self > other`
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Gt, Box::new(other))
    }
    /// `self >= other`
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Ge, Box::new(other))
    }
    /// `self AND other`
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }
    /// `self OR other`
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }
    /// `NOT self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    /// `self + other`
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::Arith(Box::new(self), ArithOp::Add, Box::new(other))
    }
    /// `self - other`
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Arith(Box::new(self), ArithOp::Sub, Box::new(other))
    }
    /// `self * other`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Arith(Box::new(self), ArithOp::Mul, Box::new(other))
    }
    /// `self / other`
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Expr {
        Expr::Arith(Box::new(self), ArithOp::Div, Box::new(other))
    }
    /// `self IS NULL`
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }
    /// `self BETWEEN lo AND hi` (inclusive).
    pub fn between(self, lo: Expr, hi: Expr) -> Expr {
        self.clone().ge(lo).and(self.le(hi))
    }

    /// Evaluate to a scalar value against a row.
    pub fn eval(&self, schema: &Schema, row: &Row) -> Result<Value> {
        Ok(match self {
            Expr::Col(name) => row[schema.column_index(name)?].clone(),
            Expr::Lit(v) => v.clone(),
            Expr::Cmp(a, op, b) => {
                let va = a.eval(schema, row)?;
                let vb = b.eval(schema, row)?;
                if va.is_null() || vb.is_null() {
                    // SQL-ish: comparisons with NULL are false.
                    return Ok(Value::Bool(false));
                }
                let ord = va.cmp(&vb);
                Value::Bool(match op {
                    CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                    CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                    CmpOp::Lt => ord == std::cmp::Ordering::Less,
                    CmpOp::Le => ord != std::cmp::Ordering::Greater,
                    CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                    CmpOp::Ge => ord != std::cmp::Ordering::Less,
                })
            }
            Expr::And(a, b) => {
                Value::Bool(a.eval(schema, row)?.as_bool()? && b.eval(schema, row)?.as_bool()?)
            }
            Expr::Or(a, b) => {
                Value::Bool(a.eval(schema, row)?.as_bool()? || b.eval(schema, row)?.as_bool()?)
            }
            Expr::Not(a) => Value::Bool(!a.eval(schema, row)?.as_bool()?),
            Expr::Arith(a, op, b) => {
                let va = a.eval(schema, row)?;
                let vb = b.eval(schema, row)?;
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Null);
                }
                match (&va, &vb) {
                    (Value::Int(x), Value::Int(y)) => match op {
                        ArithOp::Add => Value::Int(x + y),
                        ArithOp::Sub => Value::Int(x - y),
                        ArithOp::Mul => Value::Int(x * y),
                        ArithOp::Div => {
                            if *y == 0 {
                                return Err(Error::Store("integer division by zero".into()));
                            }
                            Value::Int(x / y)
                        }
                    },
                    _ => {
                        let x = va.as_float()?;
                        let y = vb.as_float()?;
                        Value::Float(match op {
                            ArithOp::Add => x + y,
                            ArithOp::Sub => x - y,
                            ArithOp::Mul => x * y,
                            ArithOp::Div => x / y,
                        })
                    }
                }
            }
            Expr::IsNull(a) => Value::Bool(a.eval(schema, row)?.is_null()),
        })
    }

    /// Evaluate as a boolean predicate.
    pub fn matches(&self, schema: &Schema, row: &Row) -> Result<bool> {
        self.eval(schema, row)?.as_bool()
    }

    /// If this predicate constrains the given columns to constants via
    /// equality conjunctions (`a = 1 AND b = 2 AND <rest>`), return the
    /// constant for each column — the index-lookup fast path.
    pub fn equality_bindings(&self) -> Vec<(String, Value)> {
        let mut out = Vec::new();
        self.collect_eq(&mut out);
        out
    }

    /// Inclusive range constraints (`col >= lo`, `col <= hi`, or both —
    /// what `between` desugars to) found in the top-level conjunction.
    /// Returns `(column, lower, upper)` with `None` for an open side.
    pub fn range_bindings(&self) -> Vec<(String, Option<Value>, Option<Value>)> {
        let mut lows: Vec<(String, Value)> = Vec::new();
        let mut highs: Vec<(String, Value)> = Vec::new();
        self.collect_ranges(&mut lows, &mut highs);
        let mut out: Vec<(String, Option<Value>, Option<Value>)> = Vec::new();
        for (c, lo) in lows {
            let hi = highs.iter().find(|(hc, _)| *hc == c).map(|(_, v)| v.clone());
            out.push((c, Some(lo), hi));
        }
        for (c, hi) in highs {
            if !out.iter().any(|(oc, _, _)| *oc == c) {
                out.push((c, None, Some(hi)));
            }
        }
        out
    }

    fn collect_ranges(&self, lows: &mut Vec<(String, Value)>, highs: &mut Vec<(String, Value)>) {
        match self {
            Expr::And(a, b) => {
                a.collect_ranges(lows, highs);
                b.collect_ranges(lows, highs);
            }
            Expr::Cmp(a, op, b) => match (a.as_ref(), op, b.as_ref()) {
                (Expr::Col(c), CmpOp::Ge, Expr::Lit(v)) => lows.push((c.clone(), v.clone())),
                (Expr::Col(c), CmpOp::Le, Expr::Lit(v)) => highs.push((c.clone(), v.clone())),
                (Expr::Lit(v), CmpOp::Le, Expr::Col(c)) => lows.push((c.clone(), v.clone())),
                (Expr::Lit(v), CmpOp::Ge, Expr::Col(c)) => highs.push((c.clone(), v.clone())),
                _ => {}
            },
            _ => {}
        }
    }

    fn collect_eq(&self, out: &mut Vec<(String, Value)>) {
        match self {
            Expr::And(a, b) => {
                a.collect_eq(out);
                b.collect_eq(out);
            }
            Expr::Cmp(a, CmpOp::Eq, b) => match (a.as_ref(), b.as_ref()) {
                (Expr::Col(c), Expr::Lit(v)) | (Expr::Lit(v), Expr::Col(c)) => {
                    out.push((c.clone(), v.clone()));
                }
                _ => {}
            },
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueType;

    fn schema() -> Schema {
        Schema::builder()
            .column("a", ValueType::Int)
            .column("b", ValueType::Float)
            .nullable_column("c", ValueType::Str)
            .build()
            .unwrap()
    }

    fn row() -> Row {
        vec![5.into(), 2.5.into(), Value::Null]
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let r = row();
        assert!(col("a").eq(lit(5)).matches(&s, &r).unwrap());
        assert!(col("a").ne(lit(4)).matches(&s, &r).unwrap());
        assert!(col("a").gt(lit(4)).matches(&s, &r).unwrap());
        assert!(col("a").ge(lit(5)).matches(&s, &r).unwrap());
        assert!(col("b").lt(lit(3.0)).matches(&s, &r).unwrap());
        assert!(col("b").le(lit(2.5)).matches(&s, &r).unwrap());
        // Cross-type numeric comparison.
        assert!(col("a").gt(lit(4.5)).matches(&s, &r).unwrap());
    }

    #[test]
    fn null_semantics() {
        let s = schema();
        let r = row();
        assert!(!col("c").eq(lit("x")).matches(&s, &r).unwrap());
        assert!(col("c").is_null().matches(&s, &r).unwrap());
        assert!(!col("a").is_null().matches(&s, &r).unwrap());
        assert_eq!(
            col("c").add(lit(1)).eval(&s, &r).unwrap(),
            Value::Null,
            "arithmetic with NULL is NULL"
        );
    }

    #[test]
    fn logic_and_between() {
        let s = schema();
        let r = row();
        let p = col("a").gt(lit(1)).and(col("b").lt(lit(10)));
        assert!(p.matches(&s, &r).unwrap());
        assert!(!p.clone().not().matches(&s, &r).unwrap());
        assert!(col("a").eq(lit(9)).or(col("a").eq(lit(5))).matches(&s, &r).unwrap());
        assert!(col("a").between(lit(4), lit(6)).matches(&s, &r).unwrap());
        assert!(!col("a").between(lit(6), lit(9)).matches(&s, &r).unwrap());
    }

    #[test]
    fn arithmetic() {
        let s = schema();
        let r = row();
        assert_eq!(col("a").add(lit(2)).eval(&s, &r).unwrap(), Value::Int(7));
        assert_eq!(col("a").sub(lit(2)).eval(&s, &r).unwrap(), Value::Int(3));
        assert_eq!(col("a").mul(lit(3)).eval(&s, &r).unwrap(), Value::Int(15));
        assert_eq!(col("a").div(lit(2)).eval(&s, &r).unwrap(), Value::Int(2));
        assert_eq!(
            col("b").mul(lit(2)).eval(&s, &r).unwrap(),
            Value::Float(5.0)
        );
        assert!(col("a").div(lit(0)).eval(&s, &r).is_err());
        // The toll formula shape: 2·(cars − 50)².
        let cars = col("a");
        let toll = lit(2).mul(cars.clone().sub(lit(3)).mul(cars.sub(lit(3))));
        assert_eq!(toll.eval(&s, &r).unwrap(), Value::Int(8));
    }

    #[test]
    fn equality_bindings_extracted() {
        let p = col("x")
            .eq(lit(1))
            .and(lit(2).eq(col("y")))
            .and(col("z").gt(lit(3)));
        let binds = p.equality_bindings();
        assert_eq!(binds.len(), 2);
        assert_eq!(binds[0], ("x".to_string(), Value::Int(1)));
        assert_eq!(binds[1], ("y".to_string(), Value::Int(2)));
        // OR breaks the conjunction fast path.
        let q = col("x").eq(lit(1)).or(col("y").eq(lit(2)));
        assert!(q.equality_bindings().is_empty());
    }

    #[test]
    fn range_bindings_extracted() {
        let p = col("x").between(lit(1), lit(5)).and(col("y").eq(lit(2)));
        let r = p.range_bindings();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0], ("x".to_string(), Some(Value::Int(1)), Some(Value::Int(5))));
        // One-sided ranges.
        let q = col("x").ge(lit(3));
        assert_eq!(q.range_bindings(), vec![("x".to_string(), Some(Value::Int(3)), None)]);
        let q = col("x").le(lit(3));
        assert_eq!(q.range_bindings(), vec![("x".to_string(), None, Some(Value::Int(3)))]);
        // OR breaks the conjunction.
        let q = col("x").ge(lit(1)).or(col("x").le(lit(2)));
        assert!(q.range_bindings().is_empty());
    }

    #[test]
    fn unknown_column_errors() {
        let s = schema();
        assert!(col("nope").eval(&s, &row()).is_err());
    }
}
