//! # confluence-relstore
//!
//! An embedded in-memory relational store: the substrate standing in for
//! the relational database the paper's Linear Road implementation uses to
//! keep segment statistics and detected accidents (MySQL in the authors'
//! setup; see DESIGN.md's substitution notes).
//!
//! Features: typed schemas with primary keys ([`schema`]), scalar values
//! interoperable with workflow tokens ([`value`]), a predicate/arithmetic
//! expression AST ([`expr`]), tables with unique primary and non-unique
//! secondary hash indexes, predicate scans with an index fast path,
//! updates/deletes, and (grouped) aggregates ([`table`]), all behind a
//! thread-safe shared handle ([`store`]).

pub mod expr;
pub mod query;
pub mod schema;
pub mod store;
pub mod table;
pub mod value;

pub use expr::{col, lit, Expr};
pub use query::{Order, Query};
pub use schema::{Column, Schema, SchemaBuilder};
pub use store::{Store, StoreHandle};
pub use table::{Agg, Table};
pub use value::{Row, Value, ValueType};
