//! Table schemas: column declarations, primary keys, row validation.

use confluence_core::error::{Error, Result};

use crate::value::{Row, Value, ValueType};

/// One column declaration.
#[derive(Debug, Clone)]
pub struct Column {
    /// Column name (unique within the schema).
    pub name: String,
    /// Declared type.
    pub ty: ValueType,
    /// Whether NULL is allowed.
    pub nullable: bool,
}

/// A table schema: ordered columns plus an optional primary key.
#[derive(Debug, Clone)]
pub struct Schema {
    columns: Vec<Column>,
    /// Column indexes forming the primary key (empty = no key).
    primary_key: Vec<usize>,
}

/// Fluent schema builder.
///
/// ```
/// use confluence_relstore::schema::SchemaBuilder;
/// use confluence_relstore::value::ValueType;
/// let schema = SchemaBuilder::new()
///     .column("xway", ValueType::Int)
///     .column("seg", ValueType::Int)
///     .column("lav", ValueType::Float)
///     .primary_key(&["xway", "seg"])
///     .build()
///     .unwrap();
/// assert_eq!(schema.len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    columns: Vec<Column>,
    primary_key: Vec<String>,
}

impl SchemaBuilder {
    /// Start an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a non-nullable column.
    pub fn column(mut self, name: &str, ty: ValueType) -> Self {
        self.columns.push(Column {
            name: name.to_string(),
            ty,
            nullable: false,
        });
        self
    }

    /// Add a nullable column.
    pub fn nullable_column(mut self, name: &str, ty: ValueType) -> Self {
        self.columns.push(Column {
            name: name.to_string(),
            ty,
            nullable: true,
        });
        self
    }

    /// Declare the primary key columns.
    pub fn primary_key(mut self, names: &[&str]) -> Self {
        self.primary_key = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Validate and produce the schema.
    pub fn build(self) -> Result<Schema> {
        for (i, c) in self.columns.iter().enumerate() {
            if self.columns[..i].iter().any(|o| o.name == c.name) {
                return Err(Error::Store(format!("duplicate column `{}`", c.name)));
            }
        }
        let mut pk = Vec::with_capacity(self.primary_key.len());
        for name in &self.primary_key {
            let idx = self
                .columns
                .iter()
                .position(|c| c.name == *name)
                .ok_or_else(|| Error::Store(format!("primary key column `{name}` not found")))?;
            if self.columns[idx].nullable {
                return Err(Error::Store(format!(
                    "primary key column `{name}` must not be nullable"
                )));
            }
            if pk.contains(&idx) {
                return Err(Error::Store(format!("duplicate primary key column `{name}`")));
            }
            pk.push(idx);
        }
        Ok(Schema {
            columns: self.columns,
            primary_key: pk,
        })
    }
}

impl Schema {
    /// Start building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::new()
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| Error::Store(format!("unknown column `{name}`")))
    }

    /// Primary key column indexes (empty when keyless).
    pub fn primary_key(&self) -> &[usize] {
        &self.primary_key
    }

    /// Extract a row's primary key values (empty when keyless).
    pub fn key_of(&self, row: &Row) -> Vec<Value> {
        self.primary_key.iter().map(|&i| row[i].clone()).collect()
    }

    /// Validate a row against the schema (arity, types, nullability).
    pub fn validate(&self, row: &Row) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(Error::Store(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        for (v, c) in row.iter().zip(&self.columns) {
            match v.value_type() {
                None => {
                    if !c.nullable {
                        return Err(Error::Store(format!(
                            "NULL in non-nullable column `{}`",
                            c.name
                        )));
                    }
                }
                Some(t) => {
                    // Ints widen into float columns.
                    let ok = t == c.ty || (t == ValueType::Int && c.ty == ValueType::Float);
                    if !ok {
                        return Err(Error::Store(format!(
                            "type mismatch in column `{}`: expected {:?}, got {:?}",
                            c.name, c.ty, t
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::builder()
            .column("id", ValueType::Int)
            .column("speed", ValueType::Float)
            .nullable_column("note", ValueType::Str)
            .primary_key(&["id"])
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_indexes() {
        let s = schema();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.column_index("speed").unwrap(), 1);
        assert!(s.column_index("nope").is_err());
        assert_eq!(s.primary_key(), &[0]);
        assert_eq!(s.columns()[2].name, "note");
    }

    #[test]
    fn validation_rules() {
        let s = schema();
        assert!(s.validate(&vec![1.into(), 2.5.into(), Value::Null]).is_ok());
        // Int widens into float column.
        assert!(s.validate(&vec![1.into(), 2.into(), Value::str("x")]).is_ok());
        // Wrong arity.
        assert!(s.validate(&vec![1.into()]).is_err());
        // NULL in non-nullable.
        assert!(s.validate(&vec![Value::Null, 2.5.into(), Value::Null]).is_err());
        // Type mismatch.
        assert!(s
            .validate(&vec![Value::str("x"), 2.5.into(), Value::Null])
            .is_err());
    }

    #[test]
    fn key_extraction() {
        let s = schema();
        let row: Row = vec![42.into(), 1.0.into(), Value::Null];
        assert_eq!(s.key_of(&row), vec![Value::Int(42)]);
    }

    #[test]
    fn bad_schemas_rejected() {
        assert!(Schema::builder()
            .column("a", ValueType::Int)
            .column("a", ValueType::Int)
            .build()
            .is_err());
        assert!(Schema::builder()
            .column("a", ValueType::Int)
            .primary_key(&["b"])
            .build()
            .is_err());
        assert!(Schema::builder()
            .nullable_column("a", ValueType::Int)
            .primary_key(&["a"])
            .build()
            .is_err());
        assert!(Schema::builder()
            .column("a", ValueType::Int)
            .primary_key(&["a", "a"])
            .build()
            .is_err());
    }
}
