//! The store: a named collection of tables behind a shareable handle.
//!
//! Workflow actors hold a [`StoreHandle`] (cheaply cloneable, thread-safe)
//! — the Linear Road workflow's `Insert Accident`, `Accident
//! Notification`, and `Toll Calculation` actors all talk to the same
//! store, exactly as the paper's implementation shares one relational
//! database.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use confluence_core::error::{Error, Result};

use crate::schema::Schema;
use crate::table::Table;

/// An in-memory relational store.
#[derive(Debug, Default)]
pub struct Store {
    tables: HashMap<String, Table>,
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a table. Fails if the name is taken.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<()> {
        if self.tables.contains_key(name) {
            return Err(Error::Store(format!("table `{name}` already exists")));
        }
        self.tables.insert(name.to_string(), Table::new(schema));
        Ok(())
    }

    /// Drop a table; returns whether it existed.
    pub fn drop_table(&mut self, name: &str) -> bool {
        self.tables.remove(name).is_some()
    }

    /// Borrow a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| Error::Store(format!("unknown table `{name}`")))
    }

    /// Borrow a table mutably.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| Error::Store(format!("unknown table `{name}`")))
    }

    /// Names of all tables (unordered).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }
}

/// A thread-safe shared handle to a [`Store`].
#[derive(Debug, Clone, Default)]
pub struct StoreHandle {
    inner: Arc<RwLock<Store>>,
}

impl StoreHandle {
    /// A handle to a fresh, empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run a read-only closure against the store.
    pub fn read<T>(&self, f: impl FnOnce(&Store) -> T) -> T {
        f(&self.inner.read())
    }

    /// Run a read-write closure against the store.
    pub fn write<T>(&self, f: impl FnOnce(&mut Store) -> T) -> T {
        f(&mut self.inner.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::value::{Value, ValueType};

    fn schema() -> Schema {
        Schema::builder()
            .column("id", ValueType::Int)
            .column("v", ValueType::Int)
            .primary_key(&["id"])
            .build()
            .unwrap()
    }

    #[test]
    fn create_query_drop() {
        let mut s = Store::new();
        s.create_table("t", schema()).unwrap();
        assert!(s.create_table("t", schema()).is_err());
        s.table_mut("t").unwrap().insert(vec![1.into(), 10.into()]).unwrap();
        let rows = s
            .table("t")
            .unwrap()
            .select(Some(&col("id").eq(lit(1))))
            .unwrap();
        assert_eq!(rows[0][1], Value::Int(10));
        assert_eq!(s.table_names(), vec!["t"]);
        assert!(s.drop_table("t"));
        assert!(!s.drop_table("t"));
        assert!(s.table("t").is_err());
        assert!(s.table_mut("t").is_err());
    }

    #[test]
    fn handle_is_shareable_across_threads() {
        let h = StoreHandle::new();
        h.write(|s| s.create_table("t", schema())).unwrap();
        let h2 = h.clone();
        let t = std::thread::spawn(move || {
            h2.write(|s| {
                s.table_mut("t")
                    .unwrap()
                    .insert(vec![7.into(), 70.into()])
            })
            .unwrap();
        });
        t.join().unwrap();
        let n = h.read(|s| s.table("t").unwrap().len());
        assert_eq!(n, 1);
    }
}
