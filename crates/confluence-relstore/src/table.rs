//! Tables: row storage, primary/secondary hash indexes, predicate scans,
//! and aggregates.

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

use confluence_core::error::{Error, Result};

use crate::expr::Expr;
use crate::schema::Schema;
use crate::value::{Row, Value};

/// A secondary (non-unique) hash index over a column subset.
#[derive(Debug)]
struct SecondaryIndex {
    names: Vec<String>,
    cols: Vec<usize>,
    map: HashMap<Vec<Value>, Vec<usize>>,
}

/// An ordered composite index: hash on the equality columns, B-tree on the
/// range column — serving `eq AND eq AND range_col BETWEEN lo AND hi`
/// queries (the Linear Road LAV lookup shape).
#[derive(Debug)]
struct OrderedIndex {
    eq_names: Vec<String>,
    eq_cols: Vec<usize>,
    range_name: String,
    range_col: usize,
    map: HashMap<Vec<Value>, BTreeMap<Value, Vec<usize>>>,
}

/// Aggregate functions.
#[derive(Debug, Clone)]
pub enum Agg {
    /// `COUNT(*)`
    Count,
    /// `SUM(col)`
    Sum(String),
    /// `AVG(col)`
    Avg(String),
    /// `MIN(col)`
    Min(String),
    /// `MAX(col)`
    Max(String),
}

/// An in-memory table with hash indexes.
#[derive(Debug)]
pub struct Table {
    schema: Schema,
    /// Row slots; `None` marks a deleted row (compacted periodically).
    rows: Vec<Option<Row>>,
    live: usize,
    /// Unique index over the primary key, if declared.
    pk_index: HashMap<Vec<Value>, usize>,
    secondary: Vec<SecondaryIndex>,
    ordered: Vec<OrderedIndex>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
            live: 0,
            pk_index: HashMap::new(),
            secondary: Vec::new(),
            ordered: Vec::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Create a secondary hash index over the named columns. Existing rows
    /// are indexed immediately.
    pub fn create_index(&mut self, columns: &[&str]) -> Result<()> {
        let cols: Vec<usize> = columns
            .iter()
            .map(|c| self.schema.column_index(c))
            .collect::<Result<_>>()?;
        let mut idx = SecondaryIndex {
            names: columns.iter().map(|s| s.to_string()).collect(),
            cols,
            map: HashMap::new(),
        };
        for (pos, slot) in self.rows.iter().enumerate() {
            if let Some(row) = slot {
                let key: Vec<Value> = idx.cols.iter().map(|&c| row[c].clone()).collect();
                idx.map.entry(key).or_default().push(pos);
            }
        }
        self.secondary.push(idx);
        Ok(())
    }

    /// Create an ordered composite index: hash-partitioned on `eq_columns`
    /// with a B-tree over `range_column`, answering
    /// `eq… AND range_column BETWEEN lo AND hi` with a range scan.
    /// Existing rows are indexed immediately.
    pub fn create_ordered_index(&mut self, eq_columns: &[&str], range_column: &str) -> Result<()> {
        let eq_cols: Vec<usize> = eq_columns
            .iter()
            .map(|c| self.schema.column_index(c))
            .collect::<Result<_>>()?;
        let range_col = self.schema.column_index(range_column)?;
        let mut idx = OrderedIndex {
            eq_names: eq_columns.iter().map(|s| s.to_string()).collect(),
            eq_cols,
            range_name: range_column.to_string(),
            range_col,
            map: HashMap::new(),
        };
        for (pos, slot) in self.rows.iter().enumerate() {
            if let Some(row) = slot {
                let key: Vec<Value> = idx.eq_cols.iter().map(|&c| row[c].clone()).collect();
                idx.map
                    .entry(key)
                    .or_default()
                    .entry(row[idx.range_col].clone())
                    .or_default()
                    .push(pos);
            }
        }
        self.ordered.push(idx);
        Ok(())
    }

    fn index_insert(&mut self, pos: usize, row: &Row) {
        for idx in &mut self.secondary {
            let key: Vec<Value> = idx.cols.iter().map(|&c| row[c].clone()).collect();
            idx.map.entry(key).or_default().push(pos);
        }
        for idx in &mut self.ordered {
            let key: Vec<Value> = idx.eq_cols.iter().map(|&c| row[c].clone()).collect();
            idx.map
                .entry(key)
                .or_default()
                .entry(row[idx.range_col].clone())
                .or_default()
                .push(pos);
        }
    }

    fn index_remove(&mut self, pos: usize, row: &Row) {
        for idx in &mut self.secondary {
            let key: Vec<Value> = idx.cols.iter().map(|&c| row[c].clone()).collect();
            if let Some(v) = idx.map.get_mut(&key) {
                v.retain(|&p| p != pos);
                if v.is_empty() {
                    idx.map.remove(&key);
                }
            }
        }
        for idx in &mut self.ordered {
            let key: Vec<Value> = idx.eq_cols.iter().map(|&c| row[c].clone()).collect();
            if let Some(tree) = idx.map.get_mut(&key) {
                if let Some(v) = tree.get_mut(&row[idx.range_col]) {
                    v.retain(|&p| p != pos);
                    if v.is_empty() {
                        tree.remove(&row[idx.range_col]);
                    }
                }
                if tree.is_empty() {
                    idx.map.remove(&key);
                }
            }
        }
    }

    /// Insert a row; rejects primary-key duplicates.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        self.schema.validate(&row)?;
        if !self.schema.primary_key().is_empty() {
            let key = self.schema.key_of(&row);
            if self.pk_index.contains_key(&key) {
                return Err(Error::Store(format!(
                    "primary key violation: {key:?} already present"
                )));
            }
            self.pk_index.insert(key, self.rows.len());
        }
        let pos = self.rows.len();
        self.index_insert(pos, &row);
        self.rows.push(Some(row));
        self.live += 1;
        Ok(())
    }

    /// Insert or replace by primary key. Returns `true` if an existing row
    /// was replaced. Requires a primary key.
    pub fn upsert(&mut self, row: Row) -> Result<bool> {
        self.schema.validate(&row)?;
        if self.schema.primary_key().is_empty() {
            return Err(Error::Store("upsert requires a primary key".into()));
        }
        let key = self.schema.key_of(&row);
        if let Some(&pos) = self.pk_index.get(&key) {
            let old = self.rows[pos].take().expect("pk index points at live row");
            self.index_remove(pos, &old);
            self.index_insert(pos, &row);
            self.rows[pos] = Some(row);
            Ok(true)
        } else {
            self.insert(row)?;
            Ok(false)
        }
    }

    /// Point lookup by primary key.
    pub fn get(&self, key: &[Value]) -> Option<&Row> {
        let &pos = self.pk_index.get(key)?;
        self.rows[pos].as_ref()
    }

    /// Candidate row positions for a predicate: an index whose columns are
    /// all bound by equality is used when available, otherwise a full scan.
    fn candidates(&self, pred: Option<&Expr>) -> Result<Vec<usize>> {
        if let Some(p) = pred {
            let binds = p.equality_bindings();
            if !binds.is_empty() {
                // Primary key covered?
                let pk = self.schema.primary_key();
                if !pk.is_empty() {
                    let mut key = Vec::with_capacity(pk.len());
                    for &c in pk {
                        let name = &self.schema.columns()[c].name;
                        if let Some((_, v)) = binds.iter().find(|(n, _)| n == name) {
                            key.push(v.clone());
                        } else {
                            key.clear();
                            break;
                        }
                    }
                    if key.len() == pk.len() {
                        return Ok(self.pk_index.get(&key).copied().into_iter().collect());
                    }
                }
                // Fully-bound secondary index?
                for idx in &self.secondary {
                    let mut key = Vec::with_capacity(idx.cols.len());
                    for name in &idx.names {
                        if let Some((_, v)) = binds.iter().find(|(n, _)| n == name) {
                            key.push(v.clone());
                        } else {
                            key.clear();
                            break;
                        }
                    }
                    if key.len() == idx.cols.len() {
                        return Ok(idx.map.get(&key).cloned().unwrap_or_default());
                    }
                }
            }
            // Ordered index: all equality columns bound plus a range (or
            // equality) on the range column.
            let ranges = p.range_bindings();
            for idx in &self.ordered {
                let mut key = Vec::with_capacity(idx.eq_cols.len());
                for name in &idx.eq_names {
                    if let Some((_, v)) = binds.iter().find(|(n, _)| n == name) {
                        key.push(v.clone());
                    } else {
                        key.clear();
                        break;
                    }
                }
                if key.len() != idx.eq_cols.len() {
                    continue;
                }
                let bounds: Option<(Bound<&Value>, Bound<&Value>)> =
                    if let Some((_, v)) = binds.iter().find(|(n, _)| *n == idx.range_name) {
                        Some((Bound::Included(v), Bound::Included(v)))
                    } else if let Some((_, lo, hi)) =
                        ranges.iter().find(|(n, _, _)| *n == idx.range_name)
                    {
                        Some((
                            lo.as_ref().map_or(Bound::Unbounded, Bound::Included),
                            hi.as_ref().map_or(Bound::Unbounded, Bound::Included),
                        ))
                    } else {
                        None
                    };
                if let Some(bounds) = bounds {
                    let Some(tree) = idx.map.get(&key) else {
                        return Ok(Vec::new());
                    };
                    let mut out = Vec::new();
                    for (_, positions) in tree.range::<Value, _>(bounds) {
                        out.extend_from_slice(positions);
                    }
                    return Ok(out);
                }
            }
        }
        Ok((0..self.rows.len())
            .filter(|&i| self.rows[i].is_some())
            .collect())
    }

    /// Top-k rows ordered by `order_col`, streamed straight off an ordered
    /// index instead of materializing and sorting the full match set.
    ///
    /// Applies when some ordered index has `order_col` as its range column
    /// and every one of its equality columns is bound to a constant by the
    /// predicate. Returns `Ok(None)` when no index fits (the caller falls
    /// back to sort) and `Ok(Some(rows))` when one does: at most `limit`
    /// rows in `order_col` order (descending when `desc`), ties broken by
    /// storage order exactly like a stable sort over `select()` output.
    pub fn top_k(
        &self,
        pred: Option<&Expr>,
        order_col: &str,
        desc: bool,
        limit: usize,
    ) -> Result<Option<Vec<Row>>> {
        let binds = pred.map(|p| p.equality_bindings()).unwrap_or_default();
        for idx in &self.ordered {
            if idx.range_name != order_col {
                continue;
            }
            let mut key = Vec::with_capacity(idx.eq_cols.len());
            for name in &idx.eq_names {
                if let Some((_, v)) = binds.iter().find(|(n, _)| n == name) {
                    key.push(v.clone());
                } else {
                    key.clear();
                    break;
                }
            }
            if key.len() != idx.eq_cols.len() {
                continue;
            }
            if limit == 0 {
                return Ok(Some(Vec::new()));
            }
            let Some(tree) = idx.map.get(&key) else {
                return Ok(Some(Vec::new()));
            };
            let buckets: Box<dyn Iterator<Item = &Vec<usize>>> = if desc {
                Box::new(tree.values().rev())
            } else {
                Box::new(tree.values())
            };
            let mut out = Vec::new();
            'scan: for positions in buckets {
                // Within one sort-key value, emit in storage order — the
                // same tie order the stable-sort fallback produces.
                let mut bucket = positions.clone();
                bucket.sort_unstable();
                for pos in bucket {
                    let Some(row) = self.rows[pos].as_ref() else {
                        continue;
                    };
                    let matched = match pred {
                        Some(p) => p.matches(&self.schema, row)?,
                        None => true,
                    };
                    if matched {
                        out.push(row.clone());
                        if out.len() == limit {
                            break 'scan;
                        }
                    }
                }
            }
            return Ok(Some(out));
        }
        Ok(None)
    }

    /// Rows satisfying the predicate (all rows when `None`), in storage
    /// order.
    pub fn select(&self, pred: Option<&Expr>) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        let mut positions = self.candidates(pred)?;
        positions.sort_unstable();
        for pos in positions {
            let Some(row) = self.rows[pos].as_ref() else {
                continue;
            };
            if match pred {
                Some(p) => p.matches(&self.schema, row)?,
                None => true,
            } {
                out.push(row.clone());
            }
        }
        Ok(out)
    }

    /// Delete rows satisfying the predicate; returns how many.
    pub fn delete_where(&mut self, pred: &Expr) -> Result<usize> {
        let mut positions = self.candidates(Some(pred))?;
        positions.sort_unstable();
        let mut deleted = 0;
        for pos in positions {
            let matched = match self.rows[pos].as_ref() {
                Some(row) => pred.matches(&self.schema, row)?,
                None => false,
            };
            if matched {
                let row = self.rows[pos].take().expect("checked above");
                self.index_remove(pos, &row);
                if !self.schema.primary_key().is_empty() {
                    self.pk_index.remove(&self.schema.key_of(&row));
                }
                self.live -= 1;
                deleted += 1;
            }
        }
        self.maybe_compact();
        Ok(deleted)
    }

    /// Update rows satisfying the predicate with `(column, value)`
    /// assignments; returns how many rows changed. Primary-key columns may
    /// not be assigned.
    pub fn update_where(&mut self, pred: &Expr, assignments: &[(&str, Value)]) -> Result<usize> {
        let cols: Vec<(usize, Value)> = assignments
            .iter()
            .map(|(name, v)| Ok((self.schema.column_index(name)?, v.clone())))
            .collect::<Result<_>>()?;
        for (c, _) in &cols {
            if self.schema.primary_key().contains(c) {
                return Err(Error::Store("cannot update a primary key column".into()));
            }
        }
        let mut positions = self.candidates(Some(pred))?;
        positions.sort_unstable();
        let mut updated = 0;
        for pos in positions {
            let matched = match self.rows[pos].as_ref() {
                Some(row) => pred.matches(&self.schema, row)?,
                None => false,
            };
            if matched {
                let mut row = self.rows[pos].take().expect("checked above");
                self.index_remove(pos, &row);
                for (c, v) in &cols {
                    row[*c] = v.clone();
                }
                self.schema.validate(&row)?;
                self.index_insert(pos, &row);
                self.rows[pos] = Some(row);
                updated += 1;
            }
        }
        Ok(updated)
    }

    /// Compute one aggregate over rows satisfying the predicate.
    pub fn aggregate(&self, pred: Option<&Expr>, agg: &Agg) -> Result<Value> {
        let rows = self.select(pred)?;
        self.aggregate_rows(&rows, agg)
    }

    fn aggregate_rows(&self, rows: &[Row], agg: &Agg) -> Result<Value> {
        match agg {
            Agg::Count => Ok(Value::Int(rows.len() as i64)),
            Agg::Sum(c) | Agg::Avg(c) => {
                let idx = self.schema.column_index(c)?;
                let mut sum = 0.0;
                let mut n = 0usize;
                for r in rows {
                    if !r[idx].is_null() {
                        sum += r[idx].as_float()?;
                        n += 1;
                    }
                }
                if n == 0 {
                    return Ok(Value::Null);
                }
                Ok(match agg {
                    Agg::Sum(_) => Value::Float(sum),
                    _ => Value::Float(sum / n as f64),
                })
            }
            Agg::Min(c) | Agg::Max(c) => {
                let idx = self.schema.column_index(c)?;
                let non_null = rows.iter().map(|r| &r[idx]).filter(|v| !v.is_null());
                let v = match agg {
                    Agg::Min(_) => non_null.min(),
                    _ => non_null.max(),
                };
                Ok(v.cloned().unwrap_or(Value::Null))
            }
        }
    }

    /// Grouped aggregation: distinct values of `group_cols` (in first-seen
    /// order) with one result per aggregate.
    pub fn group_by(
        &self,
        pred: Option<&Expr>,
        group_cols: &[&str],
        aggs: &[Agg],
    ) -> Result<Vec<(Vec<Value>, Vec<Value>)>> {
        let gcols: Vec<usize> = group_cols
            .iter()
            .map(|c| self.schema.column_index(c))
            .collect::<Result<_>>()?;
        let rows = self.select(pred)?;
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut groups: HashMap<Vec<Value>, Vec<Row>> = HashMap::new();
        for row in rows {
            let key: Vec<Value> = gcols.iter().map(|&c| row[c].clone()).collect();
            if !groups.contains_key(&key) {
                order.push(key.clone());
            }
            groups.entry(key).or_default().push(row);
        }
        let mut out = Vec::with_capacity(order.len());
        for key in order {
            let rows = &groups[&key];
            let vals: Vec<Value> = aggs
                .iter()
                .map(|a| self.aggregate_rows(rows, a))
                .collect::<Result<_>>()?;
            out.push((key, vals));
        }
        Ok(out)
    }

    /// Iterate live rows.
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter().filter_map(|r| r.as_ref())
    }

    fn maybe_compact(&mut self) {
        let dead = self.rows.len() - self.live;
        if dead < 64 || dead < self.live {
            return;
        }
        let old = std::mem::take(&mut self.rows);
        self.pk_index.clear();
        for idx in &mut self.secondary {
            idx.map.clear();
        }
        for idx in &mut self.ordered {
            idx.map.clear();
        }
        self.live = 0;
        for row in old.into_iter().flatten() {
            // Re-inserting validated rows cannot fail.
            self.insert(row).expect("re-insert of validated row");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::value::ValueType;

    fn cars_table() -> Table {
        let schema = Schema::builder()
            .column("xway", ValueType::Int)
            .column("seg", ValueType::Int)
            .column("dir", ValueType::Int)
            .column("cars", ValueType::Int)
            .column("lav", ValueType::Float)
            .primary_key(&["xway", "seg", "dir"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        t.create_index(&["seg"]).unwrap();
        t
    }

    fn row(xway: i64, seg: i64, dir: i64, cars: i64, lav: f64) -> Row {
        vec![xway.into(), seg.into(), dir.into(), cars.into(), lav.into()]
    }

    #[test]
    fn insert_get_and_pk_violation() {
        let mut t = cars_table();
        t.insert(row(0, 1, 0, 10, 50.0)).unwrap();
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let got = t.get(&[0.into(), 1.into(), 0.into()]).unwrap();
        assert_eq!(got[3], Value::Int(10));
        assert!(t.insert(row(0, 1, 0, 99, 1.0)).is_err(), "pk violation");
        assert!(t.get(&[9.into(), 9.into(), 9.into()]).is_none());
    }

    #[test]
    fn upsert_replaces_by_key() {
        let mut t = cars_table();
        assert!(!t.upsert(row(0, 1, 0, 10, 50.0)).unwrap());
        assert!(t.upsert(row(0, 1, 0, 60, 35.0)).unwrap());
        assert_eq!(t.len(), 1);
        let got = t.get(&[0.into(), 1.into(), 0.into()]).unwrap();
        assert_eq!(got[3], Value::Int(60));
        // Secondary index follows the update.
        let by_seg = t.select(Some(&col("seg").eq(lit(1)))).unwrap();
        assert_eq!(by_seg.len(), 1);
        assert_eq!(by_seg[0][3], Value::Int(60));
    }

    #[test]
    fn select_uses_pk_and_secondary_paths() {
        let mut t = cars_table();
        for seg in 0..20 {
            t.insert(row(0, seg, 0, seg * 10, 40.0)).unwrap();
            t.insert(row(1, seg, 0, seg, 60.0)).unwrap();
        }
        // Fully-bound PK → point lookup.
        let hit = t
            .select(Some(
                &col("xway")
                    .eq(lit(1))
                    .and(col("seg").eq(lit(5)))
                    .and(col("dir").eq(lit(0))),
            ))
            .unwrap();
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0][3], Value::Int(5));
        // Secondary index on seg, extra predicate still applied.
        let seg5 = t
            .select(Some(&col("seg").eq(lit(5)).and(col("cars").gt(lit(10)))))
            .unwrap();
        assert_eq!(seg5.len(), 1);
        assert_eq!(seg5[0][0], Value::Int(0));
        // Range predicate → scan.
        let busy = t.select(Some(&col("cars").ge(lit(150)))).unwrap();
        assert_eq!(busy.len(), 5, "segs 15..19 on xway 0");
        // No predicate → everything.
        assert_eq!(t.select(None).unwrap().len(), 40);
    }

    #[test]
    fn scan_and_index_agree() {
        let mut t = cars_table();
        for seg in 0..10 {
            for dir in 0..2 {
                t.insert(row(0, seg, dir, seg + dir, 30.0)).unwrap();
            }
        }
        let pred = col("seg").eq(lit(3));
        let via_index = t.select(Some(&pred)).unwrap();
        // Force a scan by using an un-indexed equivalent predicate.
        let scan_pred = col("seg").ge(lit(3)).and(col("seg").le(lit(3)));
        let via_scan = t.select(Some(&scan_pred)).unwrap();
        assert_eq!(via_index, via_scan);
        assert_eq!(via_index.len(), 2);
    }

    #[test]
    fn delete_where_maintains_indexes() {
        let mut t = cars_table();
        for seg in 0..10 {
            t.insert(row(0, seg, 0, seg, 40.0)).unwrap();
        }
        let n = t.delete_where(&col("seg").lt(lit(5))).unwrap();
        assert_eq!(n, 5);
        assert_eq!(t.len(), 5);
        assert!(t.get(&[0.into(), 2.into(), 0.into()]).is_none());
        assert!(t.select(Some(&col("seg").eq(lit(2)))).unwrap().is_empty());
        // Re-insert a deleted key: allowed.
        t.insert(row(0, 2, 0, 99, 1.0)).unwrap();
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn update_where_rewrites_and_reindexes() {
        let mut t = cars_table();
        t.insert(row(0, 1, 0, 10, 50.0)).unwrap();
        t.insert(row(0, 2, 0, 20, 50.0)).unwrap();
        let n = t
            .update_where(&col("seg").eq(lit(2)), &[("cars", 77.into())])
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(
            t.get(&[0.into(), 2.into(), 0.into()]).unwrap()[3],
            Value::Int(77)
        );
        assert!(t
            .update_where(&col("seg").eq(lit(2)), &[("seg", 9.into())])
            .is_err());
    }

    #[test]
    fn aggregates() {
        let mut t = cars_table();
        for seg in 0..4 {
            t.insert(row(0, seg, 0, seg * 10, seg as f64)).unwrap();
        }
        assert_eq!(t.aggregate(None, &Agg::Count).unwrap(), Value::Int(4));
        assert_eq!(
            t.aggregate(None, &Agg::Sum("cars".into())).unwrap(),
            Value::Float(60.0)
        );
        assert_eq!(
            t.aggregate(None, &Agg::Avg("cars".into())).unwrap(),
            Value::Float(15.0)
        );
        assert_eq!(
            t.aggregate(None, &Agg::Min("lav".into())).unwrap(),
            Value::Float(0.0)
        );
        assert_eq!(
            t.aggregate(None, &Agg::Max("lav".into())).unwrap(),
            Value::Float(3.0)
        );
        let filtered = t
            .aggregate(Some(&col("seg").ge(lit(2))), &Agg::Count)
            .unwrap();
        assert_eq!(filtered, Value::Int(2));
        // Empty aggregates.
        let none = t.aggregate(Some(&col("seg").gt(lit(100))), &Agg::Avg("cars".into()));
        assert_eq!(none.unwrap(), Value::Null);
    }

    #[test]
    fn group_by_aggregation() {
        let mut t = cars_table();
        t.insert(row(0, 1, 0, 10, 30.0)).unwrap();
        t.insert(row(0, 1, 1, 20, 40.0)).unwrap();
        t.insert(row(0, 2, 0, 30, 50.0)).unwrap();
        let groups = t
            .group_by(None, &["seg"], &[Agg::Count, Agg::Avg("cars".into())])
            .unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, vec![Value::Int(1)]);
        assert_eq!(groups[0].1, vec![Value::Int(2), Value::Float(15.0)]);
        assert_eq!(groups[1].0, vec![Value::Int(2)]);
        assert_eq!(groups[1].1, vec![Value::Int(1), Value::Float(30.0)]);
    }

    #[test]
    fn ordered_index_serves_eq_plus_range() {
        let mut t = cars_table();
        t.create_ordered_index(&["xway", "dir"], "seg").unwrap();
        for seg in 0..50 {
            t.insert(row(0, seg, 0, seg, 40.0)).unwrap();
            t.insert(row(1, seg, 0, seg + 100, 40.0)).unwrap();
        }
        let pred = col("xway")
            .eq(lit(0))
            .and(col("dir").eq(lit(0)))
            .and(col("seg").between(lit(10), lit(14)));
        let rows = t.select(Some(&pred)).unwrap();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r[0] == Value::Int(0)));
        // Equality on the range column also uses the tree.
        let pred_eq = col("xway")
            .eq(lit(1))
            .and(col("dir").eq(lit(0)))
            .and(col("seg").eq(lit(7)));
        let rows = t.select(Some(&pred_eq)).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][3], Value::Int(107));
        // One-sided range.
        let pred_open = col("xway")
            .eq(lit(0))
            .and(col("dir").eq(lit(0)))
            .and(col("seg").ge(lit(45)));
        assert_eq!(t.select(Some(&pred_open)).unwrap().len(), 5);
        // Missing partition → empty, not scan.
        let pred_missing = col("xway")
            .eq(lit(9))
            .and(col("dir").eq(lit(0)))
            .and(col("seg").between(lit(0), lit(100)));
        assert!(t.select(Some(&pred_missing)).unwrap().is_empty());
    }

    #[test]
    fn ordered_index_tracks_upsert_and_delete() {
        let mut t = cars_table();
        t.create_ordered_index(&["xway", "dir"], "seg").unwrap();
        for seg in 0..10 {
            t.insert(row(0, seg, 0, seg, 40.0)).unwrap();
        }
        t.upsert(row(0, 5, 0, 500, 40.0)).unwrap();
        t.delete_where(&col("seg").lt(lit(3))).unwrap();
        let pred = col("xway")
            .eq(lit(0))
            .and(col("dir").eq(lit(0)))
            .and(col("seg").between(lit(0), lit(5)));
        let rows = t.select(Some(&pred)).unwrap();
        assert_eq!(rows.len(), 3, "segs 3, 4, 5 remain");
        assert!(rows.iter().any(|r| r[3] == Value::Int(500)));
    }

    #[test]
    fn compaction_preserves_content() {
        let mut t = cars_table();
        for seg in 0..200 {
            t.insert(row(0, seg, 0, seg, 40.0)).unwrap();
        }
        t.delete_where(&col("seg").lt(lit(150))).unwrap();
        assert_eq!(t.len(), 50);
        // Everything still reachable after internal compaction.
        for seg in 150..200i64 {
            assert!(t.get(&[0.into(), seg.into(), 0.into()]).is_some());
        }
        assert_eq!(t.iter().count(), 50);
        assert_eq!(t.select(Some(&col("seg").eq(lit(175)))).unwrap().len(), 1);
    }
}
