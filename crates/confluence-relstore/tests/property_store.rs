//! Property tests of the relational store: index/scan equivalence, upsert
//! semantics, and aggregate consistency under random operation sequences.

use proptest::prelude::*;

use confluence_relstore::expr::{col, lit};
use confluence_relstore::{Agg, Schema, Table, Value, ValueType};

fn fresh_table(with_index: bool) -> Table {
    let schema = Schema::builder()
        .column("k", ValueType::Int)
        .column("g", ValueType::Int)
        .column("v", ValueType::Int)
        .primary_key(&["k"])
        .build()
        .unwrap();
    let mut t = Table::new(schema);
    if with_index {
        t.create_index(&["g"]).unwrap();
        t.create_ordered_index(&["g"], "v").unwrap();
    }
    t
}

/// Random operations over a small key space so collisions happen.
#[derive(Debug, Clone)]
enum Op {
    Upsert { k: i64, g: i64, v: i64 },
    Delete { g: i64 },
    UpdateV { g: i64, v: i64 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..30i64, 0..5i64, 0..100i64).prop_map(|(k, g, v)| Op::Upsert { k, g, v }),
            (0..5i64).prop_map(|g| Op::Delete { g }),
            (0..5i64, 0..100i64).prop_map(|(g, v)| Op::UpdateV { g, v }),
        ],
        0..80,
    )
}

fn apply(t: &mut Table, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Upsert { k, g, v } => {
                t.upsert(vec![(*k).into(), (*g).into(), (*v).into()]).unwrap();
            }
            Op::Delete { g } => {
                t.delete_where(&col("g").eq(lit(*g))).unwrap();
            }
            Op::UpdateV { g, v } => {
                t.update_where(&col("g").eq(lit(*g)), &[("v", (*v).into())])
                    .unwrap();
            }
        }
    }
}

proptest! {
    /// A table with a secondary index and one without produce identical
    /// query results after any operation sequence — the index is purely an
    /// access path.
    #[test]
    fn indexed_and_unindexed_tables_agree(ops in ops(), probe_g in 0..5i64) {
        let mut indexed = fresh_table(true);
        let mut plain = fresh_table(false);
        apply(&mut indexed, &ops);
        apply(&mut plain, &ops);

        prop_assert_eq!(indexed.len(), plain.len());
        let pred = col("g").eq(lit(probe_g));
        let mut a = indexed.select(Some(&pred)).unwrap();
        let mut b = plain.select(Some(&pred)).unwrap();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);

        let agg_a = indexed.aggregate(Some(&pred), &Agg::Sum("v".into())).unwrap();
        let agg_b = plain.aggregate(Some(&pred), &Agg::Sum("v".into())).unwrap();
        prop_assert_eq!(agg_a, agg_b);
    }

    /// Upsert keeps exactly one row per key and the last write wins.
    #[test]
    fn upsert_last_write_wins(writes in prop::collection::vec((0..10i64, 0..100i64), 1..60)) {
        let mut t = fresh_table(true);
        let mut model: std::collections::HashMap<i64, i64> = Default::default();
        for (k, v) in &writes {
            t.upsert(vec![(*k).into(), 0.into(), (*v).into()]).unwrap();
            model.insert(*k, *v);
        }
        prop_assert_eq!(t.len(), model.len());
        for (k, v) in &model {
            let row = t.get(&[(*k).into()]).expect("key present");
            prop_assert_eq!(row[2].clone(), Value::Int(*v));
        }
    }

    /// COUNT/SUM/AVG/MIN/MAX agree with a direct fold over `select`.
    #[test]
    fn aggregates_match_direct_fold(ops in ops()) {
        let mut t = fresh_table(true);
        apply(&mut t, &ops);
        let rows = t.select(None).unwrap();
        let vals: Vec<i64> = rows.iter().map(|r| r[2].as_int().unwrap()).collect();
        prop_assert_eq!(
            t.aggregate(None, &Agg::Count).unwrap(),
            Value::Int(vals.len() as i64)
        );
        if vals.is_empty() {
            prop_assert_eq!(t.aggregate(None, &Agg::Sum("v".into())).unwrap(), Value::Null);
            prop_assert_eq!(t.aggregate(None, &Agg::Min("v".into())).unwrap(), Value::Null);
        } else {
            let sum: i64 = vals.iter().sum();
            prop_assert_eq!(
                t.aggregate(None, &Agg::Sum("v".into())).unwrap(),
                Value::Float(sum as f64)
            );
            prop_assert_eq!(
                t.aggregate(None, &Agg::Avg("v".into())).unwrap(),
                Value::Float(sum as f64 / vals.len() as f64)
            );
            prop_assert_eq!(
                t.aggregate(None, &Agg::Min("v".into())).unwrap(),
                Value::Int(*vals.iter().min().unwrap())
            );
            prop_assert_eq!(
                t.aggregate(None, &Agg::Max("v".into())).unwrap(),
                Value::Int(*vals.iter().max().unwrap())
            );
        }
    }

    /// The ordered composite index answers eq+range queries identically to
    /// a plain scan after arbitrary mutations.
    #[test]
    fn ordered_index_matches_scan(ops in ops(), probe_g in 0..5i64, lo in 0..60i64, width in 0..60i64) {
        let mut indexed = fresh_table(true);
        let mut plain = fresh_table(false);
        apply(&mut indexed, &ops);
        apply(&mut plain, &ops);
        let pred = col("g")
            .eq(lit(probe_g))
            .and(col("v").between(lit(lo), lit(lo + width)));
        let mut a = indexed.select(Some(&pred)).unwrap();
        let mut b = plain.select(Some(&pred)).unwrap();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// Group-by partitions `select`: group sizes sum to the table size and
    /// each group's aggregate matches a filtered aggregate.
    #[test]
    fn group_by_partitions(ops in ops()) {
        let mut t = fresh_table(true);
        apply(&mut t, &ops);
        let groups = t.group_by(None, &["g"], &[Agg::Count, Agg::Sum("v".into())]).unwrap();
        let total: i64 = groups.iter().map(|(_, aggs)| match aggs[0] {
            Value::Int(n) => n,
            _ => unreachable!(),
        }).sum();
        prop_assert_eq!(total as usize, t.len());
        for (key, aggs) in &groups {
            let pred = col("g").eq(confluence_relstore::expr::Expr::Lit(key[0].clone()));
            prop_assert_eq!(
                aggs[1].clone(),
                t.aggregate(Some(&pred), &Agg::Sum("v".into())).unwrap()
            );
        }
    }
}
