//! # confluence
//!
//! Facade crate for **CONFLuEnCE** — the CONtinuous workFLow ExeCution
//! Engine — and its **STAFiLOS** stream-flow scheduling framework, a Rust
//! reproduction of Neophytou, Chrysanthis & Labrinidis (SIGMOD 2011 /
//! SWEET 2013).
//!
//! This crate re-exports the workspace members:
//!
//! * [`core`] — the continuous-workflow model: tokens, waves, windows,
//!   receivers, actors, and the PNCWF/SDF/DDF/DE directors;
//! * [`sched`] — STAFiLOS: the scheduled CWF director, the abstract
//!   scheduler, and the QBS/RR/RB policies;
//! * [`relstore`] — the embedded relational store substrate;
//! * [`linearroad`] — the Linear Road benchmark as a continuous workflow.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use confluence_core as core;
pub use confluence_linearroad as linearroad;
pub use confluence_relstore as relstore;
pub use confluence_sched as sched;

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use confluence_core::actor::{Actor, FireContext, IoSignature};
    pub use confluence_core::actors::*;
    pub use confluence_core::director::threaded::ThreadedDirector;
    pub use confluence_core::director::Director;
    pub use confluence_core::error::{Error, Result};
    pub use confluence_core::graph::{ActorId, Workflow, WorkflowBuilder};
    pub use confluence_core::time::{Micros, Timestamp};
    pub use confluence_core::token::Token;
    pub use confluence_core::window::{GroupBy, Measure, Window, WindowSpec};
}
