//! # confluence
//!
//! Facade crate for **CONFLuEnCE** — the CONtinuous workFLow ExeCution
//! Engine — and its **STAFiLOS** stream-flow scheduling framework, a Rust
//! reproduction of Neophytou, Chrysanthis & Labrinidis (SIGMOD 2011 /
//! SWEET 2013).
//!
//! This crate re-exports the workspace members:
//!
//! * [`core`] — the continuous-workflow model: tokens, waves, windows,
//!   receivers, actors, the PNCWF/SDF/DDF/DE directors, and the
//!   [`Engine`] run facade with its telemetry layer;
//! * [`sched`] — STAFiLOS: the scheduled CWF director, the abstract
//!   scheduler, and the QBS/RR/RB policies;
//! * [`relstore`] — the embedded relational store substrate;
//! * [`linearroad`] — the Linear Road benchmark as a continuous workflow.
//!
//! The recommended entry point is the [`Engine`] facade, which runs a
//! workflow under any director and collects structured per-actor metrics:
//!
//! ```no_run
//! use confluence::prelude::*;
//!
//! # fn demo(workflow: Workflow) -> Result<()> {
//! let mut engine = Engine::new(workflow).with_director(ThreadedDirector::new());
//! engine.run()?;
//! let snapshot = engine.snapshot();
//! println!("{}", snapshot.render_table());
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use confluence_core as core;
pub use confluence_linearroad as linearroad;
pub use confluence_relstore as relstore;
pub use confluence_sched as sched;

// The engine facade and its observability surface, re-exported flat.
pub use confluence_core::engine::{Engine, ExecConfig, RunHandle, StopCondition};
pub use confluence_core::telemetry::{
    MetricsRecorder, MetricsSnapshot, Observer, RunPhase, Telemetry,
};

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use confluence_core::actor::{Actor, FireContext, IoSignature};
    pub use confluence_core::actors::*;
    pub use confluence_core::channel::{ChannelPolicy, OnFull};
    pub use confluence_core::director::ddf::DdfDirector;
    pub use confluence_core::director::de::DeDirector;
    pub use confluence_core::director::pool::PoolDirector;
    pub use confluence_core::director::pool_policy::{
        Fifo, OldestWave, PolicyView, PoolPolicy, Quantum, RateBased,
    };
    pub use confluence_core::director::sdf::SdfDirector;
    pub use confluence_core::director::threaded::ThreadedDirector;
    pub use confluence_core::director::{Director, RunReport};
    pub use confluence_core::engine::{Engine, ExecConfig, RunHandle, StopCondition};
    pub use confluence_core::error::{Error, Result};
    pub use confluence_core::graph::{ActorId, Endpoint, PortSel, Shard, ShardGroup, Workflow, WorkflowBuilder};
    pub use confluence_core::telemetry::{
        LiveStats, MetricsRecorder, MetricsSnapshot, Observer, RunPhase, Telemetry,
    };
    pub use confluence_core::time::{Micros, Timestamp};
    pub use confluence_core::token::Token;
    pub use confluence_core::window::{GroupBy, Measure, Window, WindowSpec};
    pub use confluence_sched::ScwfDirector;
}
