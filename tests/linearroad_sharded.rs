//! Sharded Linear Road: splitting `TollCalculation` by carid behind the
//! generated splitter/ordered-merge pair must leave the workflow's
//! observable output — the toll notification stream — exactly as the
//! unsharded run produces it, under every director that runs the
//! benchmark.

use confluence::core::director::pool::PoolDirector;
use confluence::core::director::threaded::ThreadedDirector;
use confluence::core::director::Director;
use confluence::core::time::Micros;
use confluence::linearroad::{self, LrOptions, TollNotification, Workload, WorkloadConfig};
use confluence::sched::cost::TableCostModel;
use confluence::sched::policies::FifoScheduler;
use confluence::sched::ScwfDirector;

/// Deterministic (no-accident) trace with enough seg crossings to matter.
fn workload() -> Workload {
    Workload::generate(WorkloadConfig {
        duration_secs: 30,
        l_rating: 0.05,
        expressways: 1,
        seed: 7,
        base_initial_cars: 200,
        base_final_cars: 400,
        accident_every_secs: None,
        accident_duration_secs: 0,
    })
}

/// One run; returns the toll stream as sorted `(carid, time, seg, toll)`.
fn run(director: &str, workload: &Workload, shard: Option<usize>) -> Vec<(i64, i64, i64, u64)> {
    let realtime = matches!(director, "threaded" | "pool");
    let mut lr = linearroad::build(
        workload,
        &LrOptions {
            composite_subworkflows: false,
            shard_toll: shard,
            arrival_speedup: if realtime { 100 } else { 1 },
            ..LrOptions::default()
        },
    )
    .unwrap();
    match director {
        "threaded" => ThreadedDirector::new().run(&mut lr.workflow).map(|_| ()).unwrap(),
        "pool" => PoolDirector::new()
            .with_workers(4)
            .run(&mut lr.workflow)
            .map(|_| ())
            .unwrap(),
        "scwf" => {
            let cost = TableCostModel::uniform(Micros(20), Micros(2));
            ScwfDirector::virtual_time(Box::new(FifoScheduler::new(5)), Box::new(cost))
                .run(&mut lr.workflow)
                .map(|_| ())
                .unwrap()
        }
        other => panic!("unknown director {other}"),
    }
    let mut tolls: Vec<(i64, i64, i64, u64)> = lr
        .toll_output
        .items()
        .iter()
        .map(|i| {
            let n = TollNotification::from_token(&i.token).unwrap();
            (n.carid, n.time, n.seg, n.toll.to_bits())
        })
        .collect();
    tolls.sort_unstable();
    tolls
}

#[test]
fn sharded_toll_stream_is_identical_under_every_director() {
    let w = workload();
    for director in ["threaded", "pool", "scwf"] {
        let plain = run(director, &w, None);
        assert!(!plain.is_empty(), "{director}: trace must produce tolls");
        for replicas in [2, 3] {
            let sharded = run(director, &w, Some(replicas));
            assert_eq!(
                plain, sharded,
                "{director}: toll stream diverges at {replicas} replicas"
            );
        }
    }
}

#[test]
fn sharded_merge_preserves_emission_order_in_virtual_time() {
    // Virtual time is fully deterministic, so here the comparison can be
    // order-exact and un-deduplicated: the merge must reproduce the
    // unsharded emission sequence, not just the same set.
    let w = workload();
    let seq = |shard: Option<usize>| -> Vec<(i64, i64, i64, u64)> {
        let mut lr = linearroad::build(
            &w,
            &LrOptions {
                composite_subworkflows: false,
                shard_toll: shard,
                ..LrOptions::default()
            },
        )
        .unwrap();
        let cost = TableCostModel::uniform(Micros(20), Micros(2));
        ScwfDirector::virtual_time(Box::new(FifoScheduler::new(5)), Box::new(cost))
            .run(&mut lr.workflow)
            .unwrap();
        lr.toll_output
            .items()
            .iter()
            .map(|i| {
                let n = TollNotification::from_token(&i.token).unwrap();
                (n.carid, n.time, n.seg, n.toll.to_bits())
            })
            .collect()
    };
    let plain = seq(None);
    assert!(!plain.is_empty());
    assert_eq!(plain, seq(Some(2)), "2-replica emission order diverges");
    assert_eq!(plain, seq(Some(4)), "4-replica emission order diverges");
}
