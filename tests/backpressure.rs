//! Overload behavior of the bounded fabric, end-to-end: `Block`
//! backpressure bounds the backlog of a fast-source/slow-sink pipeline,
//! drop policies shed with exact accounting, `Error` surfaces as
//! [`Error::ChannelFull`], cooperative directors soft-admit instead of
//! stalling their scheduling loop, and an artificial deadlock on a
//! cyclic workflow is relieved by growing the smallest full queue
//! (Parks' algorithm).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use confluence::core::actor::{Actor, FireContext, IoSignature};
use confluence::core::actors::{Collector, VecSource};
use confluence::core::director::ddf::DdfDirector;
use confluence::core::error::{Error, Result};
use confluence::core::graph::WorkflowBuilder;
use confluence::core::token::Token;
use confluence::core::window::WindowSpec;
use confluence::prelude::{ChannelPolicy, Engine};

/// Sink that dwells on every window, forcing upstream backlog.
struct SlowSink {
    delay: Duration,
    seen: Arc<AtomicU64>,
}

impl Actor for SlowSink {
    fn signature(&self) -> IoSignature {
        IoSignature::sink("in")
    }
    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            thread::sleep(self.delay);
            self.seen.fetch_add(w.len() as u64, Ordering::Relaxed);
        }
        Ok(())
    }
}

/// Emits tokens `0..fanout` for every input window — a one-firing burst
/// that overruns any channel smaller than `fanout`.
struct Burst {
    fanout: i64,
}

impl Actor for Burst {
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }
    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while ctx.get(0).is_some() {
            for i in 0..self.fanout {
                ctx.emit(0, Token::Int(i));
            }
        }
        Ok(())
    }
}

/// Cycle actor: each token `v > 0` becomes two tokens `v - 1` (so the
/// in-flight population doubles per generation); stops after processing
/// exactly `budget` windows.
struct Doubling {
    seen: Arc<AtomicU64>,
    budget: u64,
}

impl Actor for Doubling {
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }
    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            self.seen.fetch_add(1, Ordering::Relaxed);
            for t in w.tokens() {
                let v = t.as_int()?;
                if v > 0 {
                    ctx.emit(0, Token::Int(v - 1));
                    ctx.emit(0, Token::Int(v - 1));
                }
            }
        }
        Ok(())
    }
    fn postfire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(self.seen.load(Ordering::Relaxed) < self.budget)
    }
}

/// Cycle actor: forwards every token unchanged; stops after processing
/// exactly `budget` windows.
struct Forward {
    seen: Arc<AtomicU64>,
    budget: u64,
}

impl Actor for Forward {
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }
    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            self.seen.fetch_add(1, Ordering::Relaxed);
            for t in w.tokens() {
                ctx.emit(0, t.clone());
            }
        }
        Ok(())
    }
    fn postfire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(self.seen.load(Ordering::Relaxed) < self.budget)
    }
}

/// Fast source into a slow sink over a `Block` channel: the writer
/// stalls at the bound instead of growing the backlog, nothing is lost,
/// and the high-watermark stays within 2x the configured capacity (the
/// ISSUE acceptance bound; in practice it stays at the capacity).
#[test]
fn block_policy_bounds_backlog() {
    const N: i64 = 300;
    const CAP: usize = 64;
    let seen = Arc::new(AtomicU64::new(0));
    let mut b = WorkflowBuilder::new("overload-block");
    let s = b.add_actor("src", VecSource::new((0..N).map(Token::Int).collect()));
    let k = b.add_actor(
        "sink",
        SlowSink {
            delay: Duration::from_micros(200),
            seen: seen.clone(),
        },
    );
    b.chain(&[s, k]).unwrap();
    let mut engine =
        Engine::new(b.build().unwrap()).with_channel_policy(ChannelPolicy::block(CAP));
    engine.run().unwrap();

    assert_eq!(seen.load(Ordering::Relaxed), N as u64, "Block loses nothing");
    let snap = engine.snapshot();
    let sink = snap.actor("sink").expect("sink metrics");
    assert!(
        sink.queue_high_water <= (2 * CAP) as u64,
        "backlog must stay bounded: high water {} > {}",
        sink.queue_high_water,
        2 * CAP
    );
    assert!(
        snap.total_blocks() > 0,
        "a source outpacing the sink must hit the bound"
    );
    assert!(snap.total_block_time().as_micros() > 0);
    assert_eq!(snap.total_shed(), 0, "Block never sheds");

    // The backpressure counters ride along in both exchange formats.
    let json = snap.to_json();
    assert!(json.contains("\"blocks\""));
    assert!(json.contains("\"block_us\""));
    assert!(json.contains("\"events_shed\""));
    let prom = snap.to_prometheus();
    assert!(prom.contains("confluence_actor_blocks_total"));
    assert!(prom.contains("confluence_actor_block_microseconds_total"));
    assert!(prom.contains("confluence_actor_events_shed_total"));
}

/// `DropOldest` under sustained overload: every event is either
/// delivered or counted as shed — nothing vanishes from the accounting.
#[test]
fn drop_oldest_sheds_with_exact_accounting() {
    const N: i64 = 200;
    let seen = Arc::new(AtomicU64::new(0));
    let mut b = WorkflowBuilder::new("overload-shed");
    let s = b.add_actor("src", VecSource::new((0..N).map(Token::Int).collect()));
    let k = b.add_actor(
        "sink",
        SlowSink {
            delay: Duration::from_micros(500),
            seen: seen.clone(),
        },
    );
    b.chain(&[s, k]).unwrap();
    b.set_channel_policy(k, "in", ChannelPolicy::drop_oldest(8))
        .unwrap();
    let mut engine = Engine::new(b.build().unwrap());
    engine.run().unwrap();

    let snap = engine.snapshot();
    let delivered = seen.load(Ordering::Relaxed);
    let shed = snap.total_shed();
    assert!(shed > 0, "a fast source into a slow 8-slot sink must shed");
    assert_eq!(
        delivered + shed,
        N as u64,
        "every event is either delivered or shed"
    );
    assert_eq!(snap.actor("sink").expect("sink metrics").events_shed, shed);
    assert_eq!(snap.total_blocks(), 0, "drop policies never block");
}

fn burst_workflow(fanout: i64, policy: ChannelPolicy) -> (Engine, Collector) {
    let c = Collector::new();
    let mut b = WorkflowBuilder::new("burst");
    let s = b.add_actor("src", VecSource::new(vec![Token::Int(0)]));
    let a = b.add_actor("burst", Burst { fanout });
    let k = b.add_actor("sink", c.actor());
    b.chain(&[s, a, k]).unwrap();
    b.set_channel_policy(k, "in", policy).unwrap();
    let engine = Engine::new(b.build().unwrap()).with_director(DdfDirector::new());
    (engine, c)
}

/// A cooperative director routes a whole firing's emissions before the
/// sink can drain, so `DropOldest` deterministically keeps the newest
/// `capacity` windows.
#[test]
fn ddf_drop_oldest_keeps_newest_windows() {
    let (mut engine, collector) = burst_workflow(10, ChannelPolicy::drop_oldest(4));
    engine.run().unwrap();
    let expect: Vec<Token> = (6..10).map(Token::Int).collect();
    assert_eq!(collector.tokens(), expect, "oldest windows are shed first");
    let snap = engine.snapshot();
    assert_eq!(snap.total_shed(), 6);
    assert_eq!(snap.actor("sink").expect("sink metrics").events_shed, 6);
}

/// Cooperative directors cannot park their scheduling loop, so `Block`
/// overflows are admitted and recorded as zero-wait blocks instead of
/// being dropped.
#[test]
fn cooperative_director_soft_admits_block_overflow() {
    let (mut engine, collector) = burst_workflow(10, ChannelPolicy::block(4));
    engine.run().unwrap();
    assert_eq!(collector.len(), 10, "soft-admitted Block loses nothing");
    let snap = engine.snapshot();
    assert_eq!(snap.total_blocks(), 6, "each over-capacity put is recorded");
    assert_eq!(snap.total_block_time().as_micros(), 0);
    assert_eq!(snap.total_shed(), 0);
    assert_eq!(
        snap.actor("sink").expect("sink metrics").queue_high_water,
        10
    );
}

/// The `Error` policy turns overload into a run failure naming the
/// saturated port.
#[test]
fn error_policy_surfaces_channel_full() {
    let (mut engine, _collector) = burst_workflow(10, ChannelPolicy::error(4));
    let err = engine.run().expect_err("fifth put must fail");
    assert!(
        matches!(
            err,
            Error::ChannelFull {
                port: 0,
                capacity: 4
            }
        ),
        "unexpected error: {err}"
    );
}

/// Artificial deadlock on a cyclic workflow (paper/Parks): a doubling
/// amplifier feeding a forwarder feeding back into the amplifier, over
/// 2-slot `Block` channels. The in-flight token population (peaks at 16
/// for a depth-4 seed) cannot fit in the bounded fabric, so both
/// writers block — the director detects the stalled fabric and grows
/// the smallest full queue until the cascade drains. Firing budgets
/// (31 = 1 seed + 30 forwarded windows; 30 = 2+4+8+16 amplified tokens)
/// terminate the cycle deterministically.
#[test]
fn artificial_deadlock_relieved_by_queue_growth() {
    let amp_seen = Arc::new(AtomicU64::new(0));
    let fwd_seen = Arc::new(AtomicU64::new(0));
    let mut b = WorkflowBuilder::new("cycle");
    let s = b.add_actor("seed", VecSource::new(vec![Token::Int(4)]));
    let a = b.add_actor(
        "amp",
        Doubling {
            seen: amp_seen.clone(),
            budget: 31,
        },
    );
    let f = b.add_actor(
        "fwd",
        Forward {
            seen: fwd_seen.clone(),
            budget: 30,
        },
    );
    b.chain(&[s, a, f]).unwrap();
    b.connect_windowed(f, "out", a, "in", WindowSpec::each_event())
        .unwrap();
    b.set_channel_policy(a, "in", ChannelPolicy::block(2)).unwrap();
    b.set_channel_policy(f, "in", ChannelPolicy::block(2)).unwrap();

    let mut engine = Engine::new(b.build().unwrap());
    engine.run().unwrap();

    assert_eq!(amp_seen.load(Ordering::Relaxed), 31);
    assert_eq!(fwd_seen.load(Ordering::Relaxed), 30);
    let snap = engine.snapshot();
    assert!(
        snap.total_blocks() > 0,
        "the doubling cascade must saturate the 2-slot channels"
    );
    let high = snap
        .actor("amp")
        .expect("amp metrics")
        .queue_high_water
        .max(snap.actor("fwd").expect("fwd metrics").queue_high_water);
    assert!(
        high > 2,
        "deadlock relief must have grown a queue past its capacity (high water {high})"
    );
}
