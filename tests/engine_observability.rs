//! The engine facade and its telemetry layer, exercised end-to-end: the
//! same per-actor metrics come back from every director, snapshots are
//! deterministic in virtual time, and the exchange formats (JSON,
//! Prometheus text) are produced from real runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use confluence::core::actor::{Actor, FireContext, IoSignature, SdfRates};
use confluence::core::actors::{Collector, VecSource};
use confluence::core::director::ddf::DdfDirector;
use confluence::core::director::de::DeDirector;
use confluence::core::director::pool::PoolDirector;
use confluence::core::director::sdf::SdfDirector;
use confluence::core::director::threaded::ThreadedDirector;
use confluence::core::error::Result;
use confluence::core::graph::{ActorId, Workflow, WorkflowBuilder};
use confluence::core::telemetry::FireRecord;
use confluence::core::time::{Micros, Timestamp};
use confluence::core::token::Token;
use confluence::prelude::{Engine, MetricsSnapshot, Observer, StopCondition};
use confluence::sched::cost::TableCostModel;
use confluence::sched::policies::FifoScheduler;
use confluence::sched::ScwfDirector;

const N: i64 = 20;

/// Rate-declaring doubler so the same graph also runs under SDF.
struct Double;
impl Actor for Double {
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }
    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            for t in w.tokens() {
                ctx.emit(0, Token::Int(t.as_int()? * 2));
            }
        }
        Ok(())
    }
    fn rates(&self) -> Option<SdfRates> {
        Some(SdfRates {
            consume: vec![1],
            produce: vec![1],
        })
    }
}

struct RatedSource(Vec<Token>);
impl Actor for RatedSource {
    fn signature(&self) -> IoSignature {
        IoSignature::source("out")
    }
    fn prefire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(!self.0.is_empty())
    }
    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        ctx.emit(0, self.0.remove(0));
        Ok(())
    }
    fn postfire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(!self.0.is_empty())
    }
    fn is_source(&self) -> bool {
        true
    }
    fn next_arrival(&self) -> Option<Timestamp> {
        if self.0.is_empty() {
            None
        } else {
            Some(Timestamp::ZERO)
        }
    }
    fn rates(&self) -> Option<SdfRates> {
        Some(SdfRates {
            consume: vec![],
            produce: vec![1],
        })
    }
}

struct RatedCollector(confluence::core::actors::CollectorActor);
impl Actor for RatedCollector {
    fn signature(&self) -> IoSignature {
        IoSignature::sink("in")
    }
    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        self.0.fire(ctx)
    }
    fn rates(&self) -> Option<SdfRates> {
        Some(SdfRates {
            consume: vec![1],
            produce: vec![],
        })
    }
}

fn pipeline(rated: bool) -> (Workflow, Collector) {
    let c = Collector::new();
    let mut b = WorkflowBuilder::new("pipeline");
    let inputs: Vec<Token> = (1..=N).map(Token::Int).collect();
    let s = if rated {
        b.add_actor("src", RatedSource(inputs))
    } else {
        b.add_actor("src", VecSource::new(inputs))
    };
    let d = b.add_actor("double", Double);
    let k = if rated {
        b.add_actor("sink", RatedCollector(c.actor()))
    } else {
        b.add_actor("sink", c.actor())
    };
    b.chain(&[s, d, k]).unwrap();
    (b.build().unwrap(), c)
}

/// Token flow through the pipeline is fully determined: the source emits
/// N tokens, the doubler passes N through, the sink absorbs N.
fn assert_pipeline_flow(snap: &MetricsSnapshot, director: &str) {
    let src = snap.actor("src").unwrap_or_else(|| panic!("{director}: src metrics"));
    let dbl = snap.actor("double").unwrap_or_else(|| panic!("{director}: double metrics"));
    let sink = snap.actor("sink").unwrap_or_else(|| panic!("{director}: sink metrics"));
    assert_eq!(src.tokens_out, N as u64, "{director}: source emissions");
    assert!(src.fires > 0, "{director}: source fired");
    assert_eq!(dbl.events_in, N as u64, "{director}: doubler intake");
    assert_eq!(dbl.tokens_out, N as u64, "{director}: doubler output");
    assert_eq!(sink.events_in, N as u64, "{director}: sink intake");
    assert_eq!(sink.tokens_out, 0, "{director}: sink emits nothing");
    assert!(snap.events_routed >= 2 * N as u64, "{director}: routed");
    // Every sink window that carried a wave origin produced a latency
    // sample; the sink consumed N events in total.
    assert!(snap.latency.count > 0, "{director}: sink latency sampled");
    assert!(snap.latency.count <= N as u64, "{director}: at most N samples");
}

#[test]
fn metrics_identical_flow_across_all_six_directors() {
    let runs: Vec<(&str, MetricsSnapshot)> = vec![
        ("threaded", {
            let (wf, _c) = pipeline(false);
            let mut e = Engine::new(wf).with_director(ThreadedDirector::new());
            e.run().unwrap();
            e.snapshot()
        }),
        ("pool", {
            let (wf, _c) = pipeline(false);
            let mut e = Engine::new(wf).with_director(PoolDirector::new().with_workers(2));
            e.run().unwrap();
            e.snapshot()
        }),
        ("sdf", {
            let (wf, _c) = pipeline(true);
            let mut e = Engine::new(wf).with_director(SdfDirector::new());
            e.run().unwrap();
            e.snapshot()
        }),
        ("ddf", {
            let (wf, _c) = pipeline(false);
            let mut e = Engine::new(wf).with_director(DdfDirector::new());
            e.run().unwrap();
            e.snapshot()
        }),
        ("de", {
            let (wf, _c) = pipeline(false);
            let mut e = Engine::new(wf).with_director(DeDirector::new());
            e.run().unwrap();
            e.snapshot()
        }),
        ("scwf", {
            let (wf, _c) = pipeline(false);
            let d = ScwfDirector::virtual_time(
                Box::new(FifoScheduler::new(5)),
                Box::new(TableCostModel::uniform(Micros(10), Micros(1))),
            );
            let mut e = Engine::new(wf).with_director(d);
            e.run().unwrap();
            e.snapshot()
        }),
    ];
    for (director, snap) in &runs {
        assert_pipeline_flow(snap, director);
    }
    // The scheduled director charges model cost as busy time.
    let scwf = &runs.iter().find(|(d, _)| *d == "scwf").unwrap().1;
    assert!(scwf.actor("double").unwrap().busy > Micros::ZERO);
    // The pool executor additionally reports per-worker counters, and
    // every firing is attributed to exactly one worker.
    let pool = &runs.iter().find(|(d, _)| *d == "pool").unwrap().1;
    assert_eq!(pool.workers.len(), 2, "one metrics row per pool worker");
    let worker_fires: u64 = pool.workers.iter().map(|w| w.fires).sum();
    assert_eq!(worker_fires, pool.total_fires(), "worker fires cover the run");
}

#[test]
fn sdf_and_de_agree_on_fire_counts() {
    let (wf, _c) = pipeline(true);
    let mut sdf = Engine::new(wf).with_director(SdfDirector::new());
    sdf.run().unwrap();
    let (wf, _c) = pipeline(false);
    let mut de = Engine::new(wf).with_director(DeDirector::new());
    de.run().unwrap();
    let a = sdf.snapshot();
    let b = de.snapshot();
    for name in ["double", "sink"] {
        assert_eq!(
            a.actor(name).unwrap().fires,
            b.actor(name).unwrap().fires,
            "fire counts diverge at `{name}`"
        );
    }
    assert_eq!(a.total_fires(), b.total_fires());
}

#[test]
fn virtual_time_snapshots_are_deterministic() {
    // Two identical runs under the virtual-clock SDF director must yield
    // byte-identical snapshots: virtual busy time is zero and timestamps
    // come from the schedule, not the wall.
    let run = || {
        let (wf, _c) = pipeline(true);
        let mut e = Engine::new(wf).with_director(SdfDirector::new());
        e.run().unwrap();
        e.snapshot().to_json()
    };
    assert_eq!(run(), run());
}

#[test]
fn report_is_a_view_over_the_recorder() {
    let (wf, _c) = pipeline(false);
    let mut e = Engine::new(wf).with_director(DdfDirector::new());
    let report = e.run().unwrap();
    let snap = e.snapshot();
    assert_eq!(report.firings, snap.total_fires());
    assert_eq!(report.events_routed, snap.events_routed);
    // A second run accumulates into the same recorder, but the per-run
    // report still covers one run.
    let (wf2, _c2) = pipeline(false);
    let mut e2 = Engine::new(wf2).with_director(DdfDirector::new());
    let r1 = e2.run().unwrap();
    assert_eq!(r1.firings, report.firings);
}

#[test]
fn exports_are_produced_from_a_real_run() {
    let (wf, _c) = pipeline(false);
    let mut e = Engine::new(wf).with_director(DeDirector::new());
    e.run().unwrap();
    let snap = e.snapshot();

    let json = snap.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    for key in ["\"total_fires\"", "\"events_routed\"", "\"latency\"", "\"double\""] {
        assert!(json.contains(key), "JSON export misses {key}: {json}");
    }

    let prom = snap.to_prometheus();
    for needle in [
        "# TYPE confluence_actor_fires_total counter",
        "confluence_actor_fires_total{actor=\"double\"}",
        "confluence_events_routed_total",
        "confluence_tuple_latency_seconds_bucket",
        "le=\"+Inf\"",
    ] {
        assert!(prom.contains(needle), "Prometheus export misses `{needle}`");
    }

    let table = snap.render_table();
    for name in ["src", "double", "sink"] {
        assert!(table.contains(name), "table misses actor `{name}`");
    }
}

#[test]
fn custom_observers_see_every_firing() {
    #[derive(Default)]
    struct FireCounter {
        fires: AtomicU64,
        tokens: AtomicU64,
    }
    impl Observer for FireCounter {
        fn on_fire_end(&self, record: &FireRecord) {
            if record.fired {
                self.fires.fetch_add(1, Ordering::Relaxed);
                self.tokens.fetch_add(record.tokens_out, Ordering::Relaxed);
            }
        }
    }
    let counter = Arc::new(FireCounter::default());
    let (wf, _c) = pipeline(false);
    let mut e = Engine::new(wf)
        .with_director(DdfDirector::new())
        .with_observer(counter.clone());
    e.run().unwrap();
    assert_eq!(counter.fires.load(Ordering::Relaxed), e.snapshot().total_fires());
    assert_eq!(counter.tokens.load(Ordering::Relaxed), 2 * N as u64);
}

#[test]
fn run_until_stops_early() {
    // A source with far more input than the stop condition allows.
    let c = Collector::new();
    let mut b = WorkflowBuilder::new("bounded");
    let inputs: Vec<Token> = (0..10_000).map(Token::Int).collect();
    let s = b.add_actor("src", VecSource::new(inputs));
    let k = b.add_actor("sink", c.actor());
    b.chain(&[s, k]).unwrap();
    let wf = b.build().unwrap();

    let mut e = Engine::new(wf).with_director(DdfDirector::new());
    e.run_until(StopCondition::Firings(50)).unwrap();
    let fires = e.snapshot().total_fires();
    assert!(fires >= 50, "the stop condition was reached ({fires})");
    assert!(
        fires < 20_000,
        "the run was cut short well before the input drained ({fires})"
    );
}

#[test]
fn queue_high_water_reflects_backlog() {
    // SDF runs the full schedule: the doubler's queue backs up while the
    // source floods, so the high-water mark exceeds one.
    let (wf, _c) = pipeline(true);
    let mut e = Engine::new(wf).with_director(SdfDirector::new());
    e.run().unwrap();
    let snap = e.snapshot();
    let ids: Vec<ActorId> = snap.actors.iter().map(|a| a.id).collect();
    assert_eq!(ids.len(), 3, "every actor appears exactly once");
    assert!(snap.actor("sink").unwrap().windows_closed >= N as u64);
}
