//! Wave-lineage tracing across directors: the same deterministic
//! workflow must yield structurally identical causal traces under every
//! model of computation, sampling must keep whole waves, the flight
//! recorder must evict oldest-wave-first without tearing spans, and the
//! critical-path decomposition must telescope to the wave's end-to-end
//! latency in virtual time.

use std::sync::Arc;

use confluence::core::actor::{Actor, FireContext, IoSignature, SdfRates};
use confluence::core::actors::Collector;
use confluence::core::director::ddf::DdfDirector;
use confluence::core::director::de::DeDirector;
use confluence::core::director::sdf::SdfDirector;
use confluence::core::director::threaded::ThreadedDirector;
use confluence::core::engine::Engine;
use confluence::core::error::Result;
use confluence::core::graph::{Workflow, WorkflowBuilder};
use confluence::core::telemetry::{TraceConfig, TraceReport, Tracer};
use confluence::core::time::{Micros, Timestamp};
use confluence::core::token::Token;
use confluence::sched::cost::TableCostModel;
use confluence::sched::policies::FifoScheduler;
use confluence::sched::ScwfDirector;

/// Source emitting one token per firing, with each arrival scheduled
/// `period` µs after the previous one — so timestamped directors give
/// every root wave a distinct origin.
struct ScheduledSource {
    emitted: usize,
    total: usize,
    period: u64,
}

impl ScheduledSource {
    fn new(total: usize, period: u64) -> Self {
        ScheduledSource {
            emitted: 0,
            total,
            period,
        }
    }
}

impl Actor for ScheduledSource {
    fn signature(&self) -> IoSignature {
        IoSignature::source("out")
    }
    fn prefire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(self.emitted < self.total)
    }
    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        ctx.emit(0, Token::Int(self.emitted as i64));
        self.emitted += 1;
        Ok(())
    }
    fn postfire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(self.emitted < self.total)
    }
    fn is_source(&self) -> bool {
        true
    }
    fn next_arrival(&self) -> Option<Timestamp> {
        if self.emitted < self.total {
            Some(Timestamp(self.emitted as u64 * self.period))
        } else {
            None
        }
    }
    fn rates(&self) -> Option<SdfRates> {
        Some(SdfRates {
            consume: vec![],
            produce: vec![1],
        })
    }
}

/// Rate-declaring doubler (one event in, one out) so the graph also
/// runs under SDF.
struct Double;

impl Actor for Double {
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }
    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            for t in w.tokens() {
                ctx.emit(0, Token::Int(t.as_int()? * 2));
            }
        }
        Ok(())
    }
    fn rates(&self) -> Option<SdfRates> {
        Some(SdfRates {
            consume: vec![1],
            produce: vec![1],
        })
    }
}

struct RatedCollector(confluence::core::actors::CollectorActor);

impl Actor for RatedCollector {
    fn signature(&self) -> IoSignature {
        IoSignature::sink("in")
    }
    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        self.0.fire(ctx)
    }
    fn rates(&self) -> Option<SdfRates> {
        Some(SdfRates {
            consume: vec![1],
            produce: vec![],
        })
    }
}

/// src ─→ double ─→ sinkA, with src also fanned out directly to sinkB:
/// one external event becomes a three-actor wave with a fan-out edge.
fn fanout_pipeline(tokens: usize, period: u64) -> Workflow {
    let mut b = WorkflowBuilder::new("traced-pipeline");
    let s = b.add_actor("src", ScheduledSource::new(tokens, period));
    let d = b.add_actor("double", Double);
    let a = b.add_actor("sinkA", RatedCollector(Collector::new().actor()));
    let x = b.add_actor("sinkB", RatedCollector(Collector::new().actor()));
    b.connect(s, "out", d, "in").unwrap();
    b.connect(s, "out", x, "in").unwrap();
    b.connect(d, "out", a, "in").unwrap();
    b.build().unwrap()
}

/// Run `workflow` under a director chosen by `engine_for`, with a
/// sample-everything tracer attached, and return the trace report.
fn traced_run(
    workflow: Workflow,
    config: TraceConfig,
    engine_for: impl FnOnce(Engine) -> Engine,
) -> TraceReport {
    let tracer = Arc::new(Tracer::for_workflow(&workflow, config));
    let mut engine = engine_for(Engine::new(workflow)).with_tracer(tracer);
    engine.run().unwrap();
    engine.trace_report().unwrap()
}

fn scwf() -> ScwfDirector {
    ScwfDirector::virtual_time(
        Box::new(FifoScheduler::new(5)),
        Box::new(TableCostModel::uniform(Micros(10), Micros(1))),
    )
}

/// The satellite acceptance test: a deterministic workload traced under
/// every director yields the same origin-normalized wave structure.
#[test]
fn trace_structure_is_director_independent() {
    let runs: Vec<(&str, TraceReport)> = vec![
        (
            "threaded",
            traced_run(fanout_pipeline(1, 1_000), TraceConfig::default(), |e| {
                e.with_director(ThreadedDirector::new())
            }),
        ),
        (
            "pool",
            traced_run(fanout_pipeline(1, 1_000), TraceConfig::default(), |e| {
                e.with_workers(2)
            }),
        ),
        (
            "sdf",
            traced_run(fanout_pipeline(1, 1_000), TraceConfig::default(), |e| {
                e.with_director(SdfDirector::new())
            }),
        ),
        (
            "ddf",
            traced_run(fanout_pipeline(1, 1_000), TraceConfig::default(), |e| {
                e.with_director(DdfDirector::new())
            }),
        ),
        (
            "de",
            traced_run(fanout_pipeline(1, 1_000), TraceConfig::default(), |e| {
                e.with_director(DeDirector::new())
            }),
        ),
        (
            "scwf",
            traced_run(fanout_pipeline(1, 1_000), TraceConfig::default(), |e| {
                e.with_director(scwf())
            }),
        ),
    ];
    let (ref_name, ref_report) = &runs[0];
    assert_eq!(
        ref_report.waves.len(),
        1,
        "{ref_name}: one external event must form exactly one wave"
    );
    let reference = ref_report.waves[0].structure();
    assert!(
        reference.iter().any(|l| l.starts_with("admit")),
        "{ref_name}: wave must start with an admit span: {reference:#?}"
    );
    assert!(
        reference.iter().any(|l| l.starts_with("dequeue")),
        "{ref_name}: wave must include queue-wait spans: {reference:#?}"
    );
    for (name, report) in &runs[1..] {
        assert_eq!(report.waves.len(), 1, "{name}: expected exactly one wave");
        assert_eq!(
            report.waves[0].structure(),
            reference,
            "{name}: wave structure diverged from {ref_name}"
        );
    }
}

/// 1-in-N head sampling keeps whole waves: a sampled root's lineage is
/// recorded end to end, unsampled roots leave no spans at all.
#[test]
fn sampling_keeps_full_lineage_per_wave() {
    let full = traced_run(fanout_pipeline(4, 1_000), TraceConfig::default(), |e| {
        e.with_director(DeDirector::new())
    });
    assert_eq!(full.waves.len(), 4);
    let reference = full.waves[0].structure();

    let sampled = traced_run(fanout_pipeline(4, 1_000), TraceConfig::sampled(2), |e| {
        e.with_director(DeDirector::new())
    });
    assert_eq!(sampled.roots_seen, 4);
    assert_eq!(sampled.sampled_roots, 2);
    assert_eq!(sampled.waves.len(), 2);
    // Roots are sampled by head position (0 and 2), and DE admits them at
    // their scheduled arrival times.
    let origins: Vec<u64> = sampled.waves.iter().map(|w| w.origin.as_micros()).collect();
    assert_eq!(origins, vec![0, 2_000]);
    for wave in &sampled.waves {
        assert_eq!(
            wave.structure(),
            reference,
            "sampled wave {} lost part of its lineage",
            wave.origin.as_micros()
        );
    }
}

/// The flight recorder evicts oldest-wave-first and never tears a wave:
/// the surviving traces are a contiguous suffix of the newest waves,
/// each still structurally complete.
#[test]
fn flight_recorder_evicts_whole_oldest_waves() {
    const ROOTS: usize = 8;
    let full = traced_run(
        fanout_pipeline(ROOTS, 1_000),
        TraceConfig::default(),
        |e| e.with_director(DeDirector::new()),
    );
    assert_eq!(full.waves.len(), ROOTS);
    let reference = full.waves[0].structure();
    let spans_per_wave = full.waves[0].spans.len();

    // Room for roughly three waves out of eight.
    let config = TraceConfig {
        sample_every: 1,
        max_spans: 3 * spans_per_wave + 1,
    };
    let budget = config.max_spans;
    let report = traced_run(fanout_pipeline(ROOTS, 1_000), config, |e| {
        e.with_director(DeDirector::new())
    });
    assert!(
        report.evicted_waves > 0,
        "the bounded recorder must have evicted something"
    );
    assert!(
        report.waves.iter().map(|w| w.spans.len()).sum::<usize>() <= budget,
        "recorder exceeded its span budget"
    );
    // Survivors are the newest waves, in order, with nothing missing
    // in between.
    let origins: Vec<u64> = report.waves.iter().map(|w| w.origin.as_micros()).collect();
    let expected: Vec<u64> = (ROOTS - report.waves.len()..ROOTS)
        .map(|i| i as u64 * 1_000)
        .collect();
    assert_eq!(origins, expected, "survivors must be the newest waves");
    for wave in &report.waves {
        assert_eq!(
            wave.structure(),
            reference,
            "evicting must not tear surviving wave {}",
            wave.origin.as_micros()
        );
    }
}

/// In virtual time the per-wave critical path telescopes exactly: the
/// route/wait/service segments sum to the wave's end-to-end latency.
#[test]
fn critical_path_sums_to_end_to_end_latency_in_virtual_time() {
    let report = traced_run(fanout_pipeline(3, 1_000), TraceConfig::default(), |e| {
        e.with_director(scwf())
    });
    assert_eq!(report.waves.len(), 3);
    let paths = report.critical_paths();
    assert_eq!(paths.len(), 3);
    for (wave, path) in report.waves.iter().zip(&paths) {
        assert_eq!(path.origin, wave.origin);
        assert!(
            path.total > Micros(0),
            "costed virtual-time run must show nonzero latency"
        );
        assert_eq!(
            path.total,
            wave.end_to_end(),
            "critical path total must equal the wave's end-to-end latency"
        );
        let segment_sum: u64 = path.segments.iter().map(|s| s.duration.as_micros()).sum();
        assert_eq!(
            Micros(segment_sum),
            path.total,
            "critical-path segments must telescope with no gaps or overlaps"
        );
    }
}
