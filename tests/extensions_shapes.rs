//! Shape tests for the extension experiments (paper §4.3 discussion and
//! §5 future work, implemented here).

use confluence_bench::config::ExperimentConfig;
use confluence_bench::extensions;

#[test]
fn load_shedding_bounds_the_saturated_tail() {
    let r = extensions::shedding_experiment(&ExperimentConfig::quick());
    assert!(r.shed_fraction > 0.0, "the shedder dropped something");
    assert!(r.shed_fraction < 0.5, "but not half the stream");
    assert!(
        r.tail_mean_shed < 0.8 * r.tail_mean_no_shed,
        "shedding must cut the saturated-tail response materially: \
         {:.2}s vs {:.2}s",
        r.tail_mean_shed,
        r.tail_mean_no_shed
    );
}

#[test]
fn capacity_shares_differentiate_workflow_instances() {
    let r = extensions::multi_workflow_experiment(&ExperimentConfig::quick());
    assert!(
        r.premium_mean < r.basic_mean,
        "the 4-share instance ({:.2}s) must beat the 1-share one ({:.2}s)",
        r.premium_mean,
        r.basic_mean
    );
}

#[test]
fn scheduler_overhead_erodes_capacity_monotonically() {
    let rows = extensions::ablations(&ExperimentConfig::quick());
    let overhead_rows: Vec<_> = rows
        .iter()
        .filter(|r| r.label.starts_with("scheduler overhead"))
        .collect();
    assert_eq!(overhead_rows.len(), 3);
    // More per-decision overhead → earlier (or equal) thrash and worse
    // (or equal) pre-saturation response.
    for pair in overhead_rows.windows(2) {
        assert!(pair[0].mean_pre_secs <= pair[1].mean_pre_secs + 1e-9);
        if let (Some(a), Some(b)) = (pair[0].thrash_secs, pair[1].thrash_secs) {
            assert!(a >= b, "overhead must not delay thrash: {a} vs {b}");
        }
    }
}
