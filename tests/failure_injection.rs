//! Failure injection: an actor erroring mid-run must surface cleanly from
//! every director (no hang, no panic, the error preserved).

use confluence::core::actor::{Actor, FireContext, IoSignature, SdfRates};
use confluence::core::actors::VecSource;
use confluence::core::director::ddf::DdfDirector;
use confluence::core::director::de::DeDirector;
use confluence::core::director::sdf::SdfDirector;
use confluence::core::director::threaded::ThreadedDirector;
use confluence::core::director::Director;
use confluence::core::error::{Error, Result};
use confluence::core::graph::{Workflow, WorkflowBuilder};
use confluence::core::time::Micros;
use confluence::core::token::Token;
use confluence::sched::cost::TableCostModel;
use confluence::sched::policies::QbsScheduler;
use confluence::sched::ScwfDirector;

/// Fails on the N-th firing.
struct FailsAfter {
    remaining: u32,
    rated: bool,
}

impl Actor for FailsAfter {
    fn signature(&self) -> IoSignature {
        IoSignature::sink("in")
    }
    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(_w) = ctx.get(0) {
            if self.remaining == 0 {
                return Err(Error::actor("failer", "fire", "injected fault"));
            }
            self.remaining -= 1;
        }
        Ok(())
    }
    fn rates(&self) -> Option<SdfRates> {
        if self.rated {
            Some(SdfRates {
                consume: vec![1],
                produce: vec![],
            })
        } else {
            None
        }
    }
}

struct RatedSource(Vec<Token>);
impl Actor for RatedSource {
    fn signature(&self) -> IoSignature {
        IoSignature::source("out")
    }
    fn prefire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(!self.0.is_empty())
    }
    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        ctx.emit(0, self.0.remove(0));
        Ok(())
    }
    fn postfire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(!self.0.is_empty())
    }
    fn is_source(&self) -> bool {
        true
    }
    fn next_arrival(&self) -> Option<confluence::core::time::Timestamp> {
        if self.0.is_empty() {
            None
        } else {
            Some(confluence::core::time::Timestamp::ZERO)
        }
    }
    fn rates(&self) -> Option<SdfRates> {
        Some(SdfRates {
            consume: vec![],
            produce: vec![1],
        })
    }
}

fn faulty_workflow(rated: bool) -> Workflow {
    let mut b = WorkflowBuilder::new("faulty");
    let s = if rated {
        b.add_actor("src", RatedSource((0..10).map(Token::Int).collect()))
    } else {
        b.add_actor("src", VecSource::new((0..10).map(Token::Int).collect()))
    };
    let k = b.add_actor("failer", FailsAfter { remaining: 3, rated });
    b.connect(s, "out", k, "in").unwrap();
    b.build().unwrap()
}

fn assert_injected(err: Error) {
    match err {
        Error::Actor { actor, message, .. } => {
            assert_eq!(actor, "failer");
            assert_eq!(message, "injected fault");
        }
        other => panic!("unexpected error kind: {other}"),
    }
}

#[test]
fn threaded_surfaces_actor_errors() {
    let mut wf = faulty_workflow(false);
    assert_injected(ThreadedDirector::new().run(&mut wf).unwrap_err());
}

#[test]
fn ddf_surfaces_actor_errors() {
    let mut wf = faulty_workflow(false);
    assert_injected(DdfDirector::new().run(&mut wf).unwrap_err());
}

#[test]
fn de_surfaces_actor_errors() {
    let mut wf = faulty_workflow(false);
    assert_injected(DeDirector::new().run(&mut wf).unwrap_err());
}

#[test]
fn sdf_surfaces_actor_errors() {
    let mut wf = faulty_workflow(true);
    assert_injected(SdfDirector::new().run(&mut wf).unwrap_err());
}

#[test]
fn scwf_surfaces_actor_errors() {
    let mut wf = faulty_workflow(false);
    let mut d = ScwfDirector::virtual_time(
        Box::new(QbsScheduler::new(500, 5)),
        Box::new(TableCostModel::uniform(Micros(10), Micros(1))),
    );
    assert_injected(d.run(&mut wf).unwrap_err());
}

#[test]
fn failing_initialize_surfaces_too() {
    struct BadInit;
    impl Actor for BadInit {
        fn signature(&self) -> IoSignature {
            IoSignature::sink("in")
        }
        fn initialize(&mut self, _ctx: &mut dyn FireContext) -> Result<()> {
            Err(Error::actor("badinit", "initialize", "nope"))
        }
        fn fire(&mut self, _ctx: &mut dyn FireContext) -> Result<()> {
            Ok(())
        }
    }
    let mut b = WorkflowBuilder::new("bad-init");
    let s = b.add_actor("src", VecSource::new(vec![Token::Int(1)]));
    let k = b.add_actor("badinit", BadInit);
    b.connect(s, "out", k, "in").unwrap();
    let mut wf = b.build().unwrap();
    let err = DdfDirector::new().run(&mut wf).unwrap_err();
    assert!(matches!(err, Error::Actor { .. }));
}
