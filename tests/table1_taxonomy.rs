//! Table 1: the taxonomy registry matches the paper's table and this
//! repository's implementations.

use confluence::core::director::taxonomy::{taxonomy, Qos, Scheduling};

#[test]
fn taxonomy_rows_cover_the_paper_table() {
    let t = taxonomy();
    let names: Vec<&str> = t.iter().map(|r| r.name).collect();
    // First group (Kepler), second group (PtolemyII), plus the CWf rows.
    for n in ["SDF", "DDF", "PN", "DE", "CN", "CI", "CSP", "DT", "HDF", "SR", "TM", "TPN", "PNCWF", "SCWF"] {
        assert!(names.contains(&n), "missing taxonomy row {n}");
    }
}

#[test]
fn implemented_directors_exist_in_the_code_base() {
    // The registry's `implemented` flags are promises; check each one
    // against a real type.
    use confluence::core::director::ddf::DdfDirector;
    use confluence::core::director::de::DeDirector;
    use confluence::core::director::sdf::SdfDirector;
    use confluence::core::director::threaded::ThreadedDirector;
    use confluence::sched::ScwfDirector;
    let _ = SdfDirector::new();
    let _ = DdfDirector::new();
    let _ = DeDirector::new();
    let _ = ThreadedDirector::new();
    let _ = ScwfDirector::real_time(Box::new(confluence::sched::FifoScheduler::new(5)));
    let implemented: Vec<&str> = taxonomy()
        .into_iter()
        .filter(|r| r.implemented)
        .map(|r| r.name)
        .collect();
    assert_eq!(implemented, vec!["SDF", "DDF", "DE", "PNCWF", "SCWF"]);
}

#[test]
fn only_scwf_offers_pluggable_qos_scheduling() {
    for row in taxonomy() {
        let pluggable = row.scheduling == Scheduling::Pluggable;
        assert_eq!(pluggable, row.name == "SCWF");
        if row.name == "SCWF" {
            assert_eq!(row.qos, Qos::Pluggable);
        }
    }
}
