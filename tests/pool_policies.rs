//! Behavioural guarantees of the pool's ready-queue policies: every
//! policy is a pure *ordering* — it may reshuffle who waits, never what
//! flows — so all four must produce the identical event flow and toll
//! notifications on a deterministic Linear Road trace; and the priority
//! policies must stay starvation-free (a de-prioritized actor still
//! drains to quiescence on a single worker).

use std::sync::Arc;

use confluence::core::actors::{Collector, VecSource};
use confluence::core::graph::WorkflowBuilder;
use confluence::core::token::Token;
use confluence::prelude::{Engine, OldestWave, PoolPolicy, Quantum, RateBased};
use confluence_bench::runner::{run_linear_road_realtime_policy, RealtimePolicy};
use confluence_linearroad::{Workload, WorkloadConfig};

/// A deterministic (no-accident) trace: all four policies must route the
/// same events through the same per-actor windows and emit the same toll
/// notifications as the FIFO control. Scheduling order is the *only*
/// degree of freedom a policy has.
#[test]
fn policies_agree_on_linear_road_event_flow() {
    let workload = Workload::generate(WorkloadConfig {
        duration_secs: 30,
        l_rating: 0.05,
        expressways: 1,
        seed: 7,
        base_initial_cars: 200,
        base_final_cars: 400,
        accident_every_secs: None,
        accident_duration_secs: 0,
    });
    let control = run_linear_road_realtime_policy(Some(2), RealtimePolicy::Fifo, &workload, 100);
    assert!(control.toll_count > 0, "trace must actually produce tolls");
    for policy in [
        RealtimePolicy::RateBased,
        RealtimePolicy::OldestWave,
        RealtimePolicy::Quantum { basic_quantum: 1_000 },
    ] {
        let run = run_linear_road_realtime_policy(Some(2), policy, &workload, 100);
        assert_eq!(
            control.events_routed,
            run.events_routed,
            "channel deliveries diverge under {}",
            policy.label()
        );
        assert_eq!(
            control.toll_count,
            run.toll_count,
            "toll outputs diverge under {}",
            policy.label()
        );
        for actor in &control.metrics.actors {
            let other = run.metrics.actor(&actor.name).expect("actor in both runs");
            assert_eq!(
                actor.events_in,
                other.events_in,
                "event intake diverges at `{}` under {}",
                actor.name,
                policy.label()
            );
            assert_eq!(
                actor.tokens_out,
                other.tokens_out,
                "emissions diverge at `{}` under {}",
                actor.name,
                policy.label()
            );
        }
    }
}

/// Run a fan-out with a strongly de-prioritized branch on a single
/// worker and return what the cold sink saw. Quiescence itself is the
/// starvation-freedom proof: `run()` only returns once every actor has
/// drained, so a policy that starved the cold branch would hang the
/// test rather than merely fail an assertion.
fn run_two_priority_fanout(policy: Arc<dyn PoolPolicy>) -> (Vec<Token>, Vec<Token>) {
    const N: i64 = 200;
    let hot = Collector::new();
    let cold = Collector::new();
    let mut b = WorkflowBuilder::new("two-priority");
    let s = b.add_actor("src", VecSource::new((0..N).map(Token::Int).collect()));
    let h = b.add_actor("hot", hot.actor());
    let c = b.add_actor("cold", cold.actor());
    b.connect(s, "out", h, "in").unwrap();
    b.connect(s, "out", c, "in").unwrap();
    // Most urgent vs. least urgent in the paper's priority band.
    b.set_priority(h, 5);
    b.set_priority(c, 39);
    let mut e = Engine::new(b.build().unwrap())
        .with_workers(1)
        .with_pool_policy_arc(policy);
    e.run().unwrap();
    (hot.tokens(), cold.tokens())
}

/// The de-prioritized branch must still see every token under each
/// priority policy — ordering policies defer work, they never drop it.
#[test]
fn priority_policies_do_not_starve_the_cold_branch() {
    let expected: Vec<Token> = (0..200).map(Token::Int).collect();
    let policies: [Arc<dyn PoolPolicy>; 3] = [
        Arc::new(RateBased),
        Arc::new(OldestWave),
        Arc::new(Quantum::new(500)),
    ];
    for policy in policies {
        let name = policy.name();
        let (hot, cold) = run_two_priority_fanout(policy);
        assert_eq!(hot, expected, "hot branch lost tokens under {name}");
        assert_eq!(cold, expected, "cold branch lost tokens under {name}");
    }
}
