//! Wave synchronization end-to-end: the motivating use of wave-tags
//! (paper §2.1) — events fan out across parallel branches and a
//! downstream task synchronizes *all* the events belonging to a single
//! wave, using a wave-based window.

use confluence::core::actor::{Actor, FireContext, IoSignature};
use confluence::core::actors::{Collector, FnActor, TimedSource, Union};
use confluence::core::director::Director;
use confluence::core::error::Result;
use confluence::core::graph::WorkflowBuilder;
use confluence::core::time::{Micros, Timestamp};
use confluence::core::token::Token;
use confluence::core::window::WindowSpec;
use confluence::sched::cost::TableCostModel;
use confluence::sched::policies::{FifoScheduler, QbsScheduler, RrScheduler};
use confluence::sched::{Scheduler, ScwfDirector};

/// Splits one order into its line items (a 1→N expansion: the produced
/// events join the external event's wave as `t.1 .. t.n`).
struct Explode;
impl Actor for Explode {
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }
    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            for t in w.tokens() {
                let n = t.int_field("items")?;
                for i in 0..n {
                    ctx.emit(
                        0,
                        Token::record()
                            .field("order", t.int_field("order")?)
                            .field("item", i)
                            .build(),
                    );
                }
            }
        }
        Ok(())
    }
}

fn run_with(policy: Box<dyn Scheduler>) -> Vec<(i64, usize)> {
    // Orders with varying item counts; each order is one external event.
    let orders: Vec<(Timestamp, Token)> = [(1i64, 3i64), (2, 1), (3, 4), (4, 2)]
        .iter()
        .enumerate()
        .map(|(k, &(order, items))| {
            (
                Timestamp::from_millis(k as u64 * 10),
                Token::record().field("order", order).field("items", items).build(),
            )
        })
        .collect();

    let out = Collector::new();
    let mut b = WorkflowBuilder::new("wave-sync");
    let src = b.add_actor("orders", TimedSource::new(orders));
    let explode = b.add_actor("explode", Explode);
    // Two parallel enrichment branches, then a union — the wave's events
    // interleave arbitrarily across the branches.
    let price = b.add_actor(
        "price",
        FnActor::new(IoSignature::transform("in", "out"), |w, emit| {
            for t in w.tokens() {
                emit(0, t.clone());
            }
            Ok(())
        }),
    );
    let stock = b.add_actor(
        "stock",
        FnActor::new(IoSignature::transform("in", "out"), |w, emit| {
            for t in w.tokens() {
                emit(0, t.clone());
            }
            Ok(())
        }),
    );
    let route = b.add_actor(
        "route",
        confluence::core::actors::Router::new(&["a", "b"], |t: &Token| {
            Ok(Some((t.int_field("item")? % 2) as usize))
        }),
    );
    let union = b.add_actor("union", Union::new(2));
    // The synchronizer: a wave window delivers exactly the complete wave.
    let sync = b.add_actor(
        "sync",
        FnActor::new(IoSignature::transform("in", "out"), |w, emit| {
            let order = w.events[0].token.int_field("order")?;
            emit(
                0,
                Token::record()
                    .field("order", order)
                    .field("parts", w.len() as i64)
                    .build(),
            );
            Ok(())
        }),
    );
    let sink = b.add_actor("sink", out.actor());
    b.connect(src, "out", explode, "in").unwrap();
    b.connect(explode, "out", route, "in").unwrap();
    b.connect(route, "a", price, "in").unwrap();
    b.connect(route, "b", stock, "in").unwrap();
    b.connect(price, "out", union, "in0").unwrap();
    b.connect(stock, "out", union, "in1").unwrap();
    b.connect_windowed(union, "out", sync, "in", WindowSpec::wave())
        .unwrap();
    b.connect(sync, "out", sink, "in").unwrap();
    let mut wf = b.build().unwrap();

    let mut d = ScwfDirector::virtual_time(
        policy,
        Box::new(TableCostModel::uniform(Micros(35), Micros(7))),
    );
    d.run(&mut wf).unwrap();

    let mut got: Vec<(i64, usize)> = out
        .tokens()
        .iter()
        .map(|t| {
            (
                t.int_field("order").unwrap(),
                t.int_field("parts").unwrap() as usize,
            )
        })
        .collect();
    got.sort_unstable();
    got
}

#[test]
fn wave_windows_reassemble_fanned_out_events() {
    let got = run_with(Box::new(FifoScheduler::new(5)));
    // Every order arrives exactly once, with ALL its parts, despite the
    // parts taking different branches.
    assert_eq!(got, vec![(1, 3), (2, 1), (3, 4), (4, 2)]);
}

#[test]
fn wave_synchronization_is_scheduler_independent() {
    let reference = run_with(Box::new(FifoScheduler::new(5)));
    for policy in [
        Box::new(QbsScheduler::new(500, 5)) as Box<dyn Scheduler>,
        Box::new(RrScheduler::new(10_000, 5)),
    ] {
        assert_eq!(run_with(policy), reference);
    }
}
