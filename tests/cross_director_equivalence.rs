//! Cross-director equivalence: the same workflow specification computes
//! the same results under every model of computation — the Kepler/Ptolemy
//! decoupling the whole system rests on.

use confluence::core::actor::{Actor, FireContext, IoSignature, SdfRates};
use confluence::core::actors::{Collector, VecSource};
use confluence::core::director::ddf::DdfDirector;
use confluence::core::director::de::DeDirector;
use confluence::core::director::sdf::SdfDirector;
use confluence::core::director::threaded::ThreadedDirector;
use confluence::core::director::Director;
use confluence::core::error::Result;
use confluence::core::graph::{Workflow, WorkflowBuilder};
use confluence::core::time::Micros;
use confluence::core::token::Token;
use confluence::sched::cost::TableCostModel;
use confluence::sched::policies::{FifoScheduler, QbsScheduler};
use confluence::sched::ScwfDirector;

/// Rate-declaring doubler so the same graph also runs under SDF.
struct Double;
impl Actor for Double {
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }
    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            for t in w.tokens() {
                ctx.emit(0, Token::Int(t.as_int()? * 2));
            }
        }
        Ok(())
    }
    fn rates(&self) -> Option<SdfRates> {
        Some(SdfRates {
            consume: vec![1],
            produce: vec![1],
        })
    }
}

struct RatedSource(Vec<Token>);
impl Actor for RatedSource {
    fn signature(&self) -> IoSignature {
        IoSignature::source("out")
    }
    fn prefire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(!self.0.is_empty())
    }
    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        ctx.emit(0, self.0.remove(0));
        Ok(())
    }
    fn postfire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(!self.0.is_empty())
    }
    fn is_source(&self) -> bool {
        true
    }
    fn next_arrival(&self) -> Option<confluence::core::time::Timestamp> {
        if self.0.is_empty() {
            None
        } else {
            Some(confluence::core::time::Timestamp::ZERO)
        }
    }
    fn rates(&self) -> Option<SdfRates> {
        Some(SdfRates {
            consume: vec![],
            produce: vec![1],
        })
    }
}

struct RatedCollector(confluence::core::actors::CollectorActor);
impl Actor for RatedCollector {
    fn signature(&self) -> IoSignature {
        IoSignature::sink("in")
    }
    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        self.0.fire(ctx)
    }
    fn rates(&self) -> Option<SdfRates> {
        Some(SdfRates {
            consume: vec![1],
            produce: vec![],
        })
    }
}

fn pipeline(rated: bool) -> (Workflow, Collector) {
    let c = Collector::new();
    let mut b = WorkflowBuilder::new("pipeline");
    let inputs: Vec<Token> = (1..=20).map(Token::Int).collect();
    let s = if rated {
        b.add_actor("src", RatedSource(inputs))
    } else {
        b.add_actor("src", VecSource::new(inputs))
    };
    let d = b.add_actor("double", Double);
    let k = if rated {
        b.add_actor("sink", RatedCollector(c.actor()))
    } else {
        b.add_actor("sink", c.actor())
    };
    b.connect(s, "out", d, "in").unwrap();
    b.connect(d, "out", k, "in").unwrap();
    (b.build().unwrap(), c)
}

fn expected() -> Vec<i64> {
    (1..=20).map(|i| i * 2).collect()
}

fn collected(c: &Collector) -> Vec<i64> {
    c.tokens().iter().map(|t| t.as_int().unwrap()).collect()
}

#[test]
fn threaded_pncwf() {
    let (mut wf, c) = pipeline(false);
    ThreadedDirector::new().run(&mut wf).unwrap();
    assert_eq!(collected(&c), expected());
}

#[test]
fn sdf() {
    let (mut wf, c) = pipeline(true);
    SdfDirector::new().run(&mut wf).unwrap();
    assert_eq!(collected(&c), expected());
}

#[test]
fn ddf() {
    let (mut wf, c) = pipeline(false);
    DdfDirector::new().run(&mut wf).unwrap();
    assert_eq!(collected(&c), expected());
}

#[test]
fn de() {
    let (mut wf, c) = pipeline(false);
    DeDirector::new().run(&mut wf).unwrap();
    assert_eq!(collected(&c), expected());
}

#[test]
fn scwf_fifo_and_qbs() {
    for policy in [
        Box::new(FifoScheduler::new(5)) as Box<dyn confluence::sched::Scheduler>,
        Box::new(QbsScheduler::new(500, 5)),
    ] {
        let (mut wf, c) = pipeline(false);
        let cost = TableCostModel::uniform(Micros(10), Micros(1));
        ScwfDirector::virtual_time(policy, Box::new(cost))
            .run(&mut wf)
            .unwrap();
        assert_eq!(collected(&c), expected());
    }
}

#[test]
fn scwf_real_time() {
    let (mut wf, c) = pipeline(false);
    ScwfDirector::real_time(Box::new(FifoScheduler::new(5)))
        .run(&mut wf)
        .unwrap();
    assert_eq!(collected(&c), expected());
}
