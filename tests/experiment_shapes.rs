//! Experiment-shape tests: the qualitative claims of the paper's §4.2,
//! asserted on down-scaled (quick) runs. These are the "does the
//! reproduction reproduce" tests — see DESIGN.md's shape criteria.

use confluence_bench::config::ExperimentConfig;
use confluence_bench::runner::{run_linear_road, PolicyKind};
use confluence_linearroad::Workload;

fn quick() -> (ExperimentConfig, Workload) {
    let config = ExperimentConfig::quick();
    let workload = Workload::generate(config.workload());
    (config, workload)
}

#[test]
fn figure5_rate_ramps_to_roughly_twenty_times_the_initial() {
    let (_config, workload) = quick();
    let series = workload.rate_series(30);
    let early = series[1].1;
    let late = series[series.len() - 2].1;
    assert!(late / early > 4.0, "ramp {early} → {late} too shallow");
}

#[test]
fn figure8_pncwf_thrashes_before_stafilos_schedulers() {
    let (config, workload) = quick();
    let qbs = run_linear_road(PolicyKind::Qbs { basic_quantum: 500 }, &workload, &config);
    let rr = run_linear_road(PolicyKind::Rr { slice: 40_000 }, &workload, &config);
    let pncwf = run_linear_road(PolicyKind::Pncwf, &workload, &config);

    let t_pncwf = pncwf.thrash_secs.expect("PNCWF saturates within the run");
    for staf in [&qbs, &rr] {
        // A `None` is even stronger: the STAFiLOS scheduler never saturated.
        if let Some(t) = staf.thrash_secs {
            assert!(
                t_pncwf < t,
                "PNCWF ({t_pncwf}s) must thrash before {} ({t}s)",
                staf.label
            );
        }
    }
    // Claim: the thread-based baseline has much lower capacity — its
    // pre-saturation response time is already far worse.
    assert!(
        pncwf.toll_series.mean_secs_before(300) > 2.0 * qbs.toll_series.mean_secs_before(300),
        "PNCWF pre-saturation response must dominate QBS's"
    );
}

#[test]
fn figure8_qbs_and_rr_beat_rb_before_saturation() {
    let (config, workload) = quick();
    let qbs = run_linear_road(PolicyKind::Qbs { basic_quantum: 500 }, &workload, &config);
    let rr = run_linear_road(PolicyKind::Rr { slice: 40_000 }, &workload, &config);
    let rb = run_linear_road(PolicyKind::Rb, &workload, &config);
    let m_qbs = qbs.toll_series.mean_secs_before(400);
    let m_rr = rr.toll_series.mean_secs_before(400);
    let m_rb = rb.toll_series.mean_secs_before(400);
    // RB does not privilege source actors: tokens wait longer to enter
    // the workflow, so its response times are the worst of the three.
    assert!(m_rb > m_qbs, "RB ({m_rb:.3}s) must trail QBS ({m_qbs:.3}s)");
    assert!(m_rb > m_rr, "RB ({m_rb:.3}s) must trail RR ({m_rr:.3}s)");
    // QBS and RR keep response times low (paper: under 2 s) until thrash.
    assert!(m_qbs < 2.0, "QBS pre-thrash mean {m_qbs:.3}s exceeds 2 s");
    assert!(m_rr < 2.0, "RR pre-thrash mean {m_rr:.3}s exceeds 2 s");
}

#[test]
fn all_schedulers_produce_comparable_output_volumes() {
    // Scheduling changes timing, not semantics: toll-notification counts
    // agree across schedulers up to the run cut-off effects.
    let (config, workload) = quick();
    let runs: Vec<_> = [
        PolicyKind::Fifo,
        PolicyKind::Qbs { basic_quantum: 500 },
        PolicyKind::Rr { slice: 40_000 },
        PolicyKind::Rb,
    ]
    .iter()
    .map(|&k| run_linear_road(k, &workload, &config))
    .collect();
    let max = runs.iter().map(|r| r.toll_count).max().unwrap();
    let min = runs.iter().map(|r| r.toll_count).min().unwrap();
    assert!(max > 0);
    assert!(
        (max - min) as f64 <= 0.15 * max as f64,
        "output volumes diverge: {min}..{max}"
    );
}
