//! The pooled work-stealing executor, end-to-end: firings are attributed
//! to workers (and idle workers steal), the shared timer thread closes
//! timed windows without per-actor threads, `Block` backpressure parks
//! the blocked *task* instead of a whole OS thread, the deadlock-relief
//! valve still works when writers park, and the pool produces the same
//! event flow as the thread-per-actor baseline on Linear Road.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use confluence::core::actor::{Actor, FireContext, IoSignature};
use confluence::core::actors::{Collector, TimedSource, VecSource};
use confluence::core::error::Result;
use confluence::core::graph::WorkflowBuilder;
use confluence::core::time::{Micros, Timestamp};
use confluence::core::token::Token;
use confluence::core::window::WindowSpec;
use confluence::prelude::{ChannelPolicy, Engine, Observer};
use confluence_bench::runner::run_linear_road_realtime;
use confluence_linearroad::{Workload, WorkloadConfig};

/// Sink that dwells on every window, forcing upstream backlog.
struct SlowSink {
    delay: Duration,
    seen: Arc<AtomicU64>,
}

impl Actor for SlowSink {
    fn signature(&self) -> IoSignature {
        IoSignature::sink("in")
    }
    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            thread::sleep(self.delay);
            self.seen.fetch_add(w.len() as u64, Ordering::Relaxed);
        }
        Ok(())
    }
}

/// Cycle actor: each token `v > 0` becomes two tokens `v - 1`; stops
/// after processing exactly `budget` windows (see `tests/backpressure.rs`).
struct Doubling {
    seen: Arc<AtomicU64>,
    budget: u64,
}

impl Actor for Doubling {
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }
    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            self.seen.fetch_add(1, Ordering::Relaxed);
            for t in w.tokens() {
                let v = t.as_int()?;
                if v > 0 {
                    ctx.emit(0, Token::Int(v - 1));
                    ctx.emit(0, Token::Int(v - 1));
                }
            }
        }
        Ok(())
    }
    fn postfire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(self.seen.load(Ordering::Relaxed) < self.budget)
    }
}

/// Cycle actor: forwards every token unchanged; stops after `budget`
/// windows.
struct Forward {
    seen: Arc<AtomicU64>,
    budget: u64,
}

impl Actor for Forward {
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }
    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            self.seen.fetch_add(1, Ordering::Relaxed);
            for t in w.tokens() {
                ctx.emit(0, t.clone());
            }
        }
        Ok(())
    }
    fn postfire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(self.seen.load(Ordering::Relaxed) < self.budget)
    }
}

/// One wide fan-out run on a 4-worker pool. Returns (steals, workers,
/// worker-fires-sum, total-fires).
fn fan_out_run() -> (u64, usize, u64, u64) {
    let mut b = WorkflowBuilder::new("steal");
    let s = b.add_actor("src", VecSource::new((0..400).map(Token::Int).collect()));
    for i in 0..8 {
        let k = b.add_actor(format!("sink{i}"), Collector::new().actor());
        b.connect(s, "out", k, "in").unwrap();
    }
    let mut e = Engine::new(b.build().unwrap()).with_workers(4);
    e.run().unwrap();
    let snap = e.snapshot();
    let steals: u64 = snap.workers.iter().map(|w| w.steals).sum();
    let fires: u64 = snap.workers.iter().map(|w| w.fires).sum();
    (steals, snap.workers.len(), fires, snap.total_fires())
}

/// Every firing is attributed to exactly one worker, and with more
/// workers than the machine has cores, idle workers end up stealing from
/// busy queues. Stealing depends on the OS interleaving worker threads,
/// so the run retries a bounded number of times before declaring failure.
#[test]
fn workers_attribute_fires_and_steal() {
    let mut stole = false;
    for _ in 0..20 {
        let (steals, workers, worker_fires, total_fires) = fan_out_run();
        assert_eq!(workers, 4, "one metrics row per worker");
        assert_eq!(worker_fires, total_fires, "fires partition across workers");
        if steals > 0 {
            stole = true;
            break;
        }
    }
    assert!(stole, "no worker stole a task in 20 fan-out runs");
}

/// A timed window whose closing event arrives far too late: the shared
/// timer thread must fire the 20ms deadline long before the 200ms event
/// (or the source's shutdown flush) could close the window. (Under the
/// thread-per-actor executor every actor polls its own deadlines; the
/// pool centralizes them in one timer.)
#[test]
fn timer_thread_closes_timed_windows() {
    struct CloseTimes(Mutex<Vec<Timestamp>>);
    impl Observer for CloseTimes {
        fn on_window_close(
            &self,
            _actor: confluence::core::graph::ActorId,
            _port: usize,
            _windows: usize,
            _queue_depth: usize,
            at: Timestamp,
        ) {
            self.0.lock().unwrap().push(at);
        }
    }
    let closes = Arc::new(CloseTimes(Mutex::new(Vec::new())));
    let c = Collector::new();
    let mut b = WorkflowBuilder::new("timed");
    let s = b.add_actor(
        "src",
        TimedSource::new(vec![
            (Timestamp(0), Token::Int(42)),
            (Timestamp(200_000), Token::Int(7)),
        ]),
    );
    let k = b.add_actor("sink", c.actor());
    b.connect_windowed(s, "out", k, "in", WindowSpec::tumbling_time(Micros::from_millis(20)))
        .unwrap();
    let mut e = Engine::new(b.build().unwrap())
        .with_observer(closes.clone())
        .with_workers(1);
    e.run().unwrap();
    assert_eq!(c.tokens(), vec![Token::Int(42), Token::Int(7)]);
    let first = *closes.0.lock().unwrap().first().expect("a window closed");
    assert!(
        first.as_micros() < 150_000,
        "first window must close at its ~20ms deadline, not at the 200ms \
         arrival or shutdown (closed at {}us)",
        first.as_micros()
    );
    assert!(e.snapshot().actor("sink").unwrap().windows_closed >= 1);
}

/// The `tests/backpressure.rs` Block bound, now under the pool: a fast
/// source into a slow sink over a 64-slot `Block` channel. The writer's
/// *task* parks at the bound (the worker moves on), nothing is lost, and
/// the backlog stays within 2x the capacity.
#[test]
fn block_policy_bounds_backlog_under_pool() {
    const N: i64 = 300;
    const CAP: usize = 64;
    let seen = Arc::new(AtomicU64::new(0));
    let mut b = WorkflowBuilder::new("overload-block-pool");
    let s = b.add_actor("src", VecSource::new((0..N).map(Token::Int).collect()));
    let k = b.add_actor(
        "sink",
        SlowSink {
            delay: Duration::from_micros(200),
            seen: seen.clone(),
        },
    );
    b.chain(&[s, k]).unwrap();
    let mut engine = Engine::new(b.build().unwrap())
        .with_channel_policy(ChannelPolicy::block(CAP))
        .with_workers(2);
    engine.run().unwrap();

    assert_eq!(seen.load(Ordering::Relaxed), N as u64, "Block loses nothing");
    let snap = engine.snapshot();
    let sink = snap.actor("sink").expect("sink metrics");
    assert!(
        sink.queue_high_water <= (2 * CAP) as u64,
        "backlog must stay bounded: high water {} > {}",
        sink.queue_high_water,
        2 * CAP
    );
    assert!(
        snap.total_blocks() > 0,
        "a source outpacing the sink must hit the bound"
    );
    assert_eq!(snap.total_shed(), 0, "Block never sheds");
}

/// The artificial-deadlock cycle from `tests/backpressure.rs`, under the
/// pool: with writers parked as tasks (not threads), the timer thread
/// still detects the frozen fabric and grows the smallest full queue.
#[test]
fn artificial_deadlock_relieved_under_pool() {
    let amp_seen = Arc::new(AtomicU64::new(0));
    let fwd_seen = Arc::new(AtomicU64::new(0));
    let mut b = WorkflowBuilder::new("cycle-pool");
    let s = b.add_actor("seed", VecSource::new(vec![Token::Int(4)]));
    let a = b.add_actor(
        "amp",
        Doubling {
            seen: amp_seen.clone(),
            budget: 31,
        },
    );
    let f = b.add_actor(
        "fwd",
        Forward {
            seen: fwd_seen.clone(),
            budget: 30,
        },
    );
    b.chain(&[s, a, f]).unwrap();
    b.connect_windowed(f, "out", a, "in", WindowSpec::each_event())
        .unwrap();
    b.set_channel_policy(a, "in", ChannelPolicy::block(2)).unwrap();
    b.set_channel_policy(f, "in", ChannelPolicy::block(2)).unwrap();

    let mut engine = Engine::new(b.build().unwrap()).with_workers(2);
    engine.run().unwrap();

    assert_eq!(amp_seen.load(Ordering::Relaxed), 31);
    assert_eq!(fwd_seen.load(Ordering::Relaxed), 30);
    let snap = engine.snapshot();
    let high = snap
        .actor("amp")
        .expect("amp metrics")
        .queue_high_water
        .max(snap.actor("fwd").expect("fwd metrics").queue_high_water);
    assert!(
        high > 2,
        "deadlock relief must have grown a queue past its capacity (high water {high})"
    );
}

/// Head-to-head on a deterministic (no-accident) Linear Road trace: the
/// pool must route exactly the same events through exactly the same
/// per-actor windows as the thread-per-actor baseline, and produce the
/// same toll notifications. (Firing *counts* are batching-dependent —
/// one wake may drain several windows — so the invariant is over event
/// flow, not wakes.)
#[test]
fn pool_matches_threaded_event_flow_on_linear_road() {
    let workload = Workload::generate(WorkloadConfig {
        duration_secs: 30,
        l_rating: 0.05,
        expressways: 1,
        seed: 7,
        base_initial_cars: 200,
        base_final_cars: 400,
        accident_every_secs: None,
        accident_duration_secs: 0,
    });
    let threaded = run_linear_road_realtime(None, &workload, 100);
    let pool = run_linear_road_realtime(Some(2), &workload, 100);
    assert_eq!(
        threaded.events_routed, pool.events_routed,
        "channel deliveries diverge"
    );
    assert_eq!(threaded.toll_count, pool.toll_count, "toll outputs diverge");
    for actor in &threaded.metrics.actors {
        let other = pool.metrics.actor(&actor.name).expect("actor in both runs");
        assert_eq!(
            actor.events_in, other.events_in,
            "event intake diverges at `{}`",
            actor.name
        );
        assert_eq!(
            actor.tokens_out, other.tokens_out,
            "emissions diverge at `{}`",
            actor.name
        );
    }
    assert_eq!(pool.metrics.workers.len(), 2, "pool reports its two workers");
    assert!(pool.firings > 0 && threaded.firings > 0);
}
