//! Keyed actor sharding: the builder expands a `shard()`-marked actor into
//! splitter → replicas → ordered merge, and every director runs the
//! expanded graph unchanged with output equal — including order — to the
//! unsharded run.

use std::collections::HashMap;

use confluence::core::actor::{Actor, FireContext, IoSignature};
use confluence::core::actors::{Collector, VecSource};
use confluence::core::director::ddf::DdfDirector;
use confluence::core::director::de::DeDirector;
use confluence::core::director::pool::PoolDirector;
use confluence::core::director::sdf::SdfDirector;
use confluence::core::director::threaded::ThreadedDirector;
use confluence::core::director::Director;
use confluence::core::error::{Error, Result};
use confluence::core::graph::{Shard, Workflow, WorkflowBuilder};
use confluence::core::time::Micros;
use confluence::core::token::Token;
use confluence::sched::cost::TableCostModel;
use confluence::sched::policies::FifoScheduler;
use confluence::sched::ScwfDirector;

fn rec(k: i64, v: i64) -> Token {
    Token::record().field("k", k).field("v", v).build()
}

/// Per-key running sum: stateful, but only over state partitioned by the
/// shard key, so it is safe to replicate.
#[derive(Default)]
struct KeyedSum {
    sums: HashMap<i64, i64>,
}

impl Actor for KeyedSum {
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }
    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            for t in w.tokens() {
                let k = t.int_field("k")?;
                let v = t.int_field("v")?;
                let sum = self.sums.entry(k).or_insert(0);
                *sum += v;
                ctx.emit(0, rec(k, *sum));
            }
        }
        Ok(())
    }
    fn replicate(&self) -> Option<Box<dyn Actor>> {
        Some(Box::<KeyedSum>::default())
    }
}

fn inputs() -> Vec<Token> {
    (0..40).map(|i| rec(i % 5, i)).collect()
}

/// The reference result: running sums in input order.
fn expected() -> Vec<(i64, i64)> {
    let mut sums: HashMap<i64, i64> = HashMap::new();
    inputs()
        .iter()
        .map(|t| {
            let k = t.int_field("k").unwrap();
            let v = t.int_field("v").unwrap();
            let s = sums.entry(k).or_insert(0);
            *s += v;
            (k, *s)
        })
        .collect()
}

fn build(replicas: Option<usize>) -> (Workflow, Collector) {
    let c = Collector::new();
    let mut b = WorkflowBuilder::new("sharded-sum");
    let s = b.add_actor("src", VecSource::new(inputs()));
    let a = b.add_actor("sum", KeyedSum::default());
    let k = b.add_actor("sink", c.actor());
    b.link(s.port("out"), a.port("in")).unwrap();
    b.link(a.port("out"), k.port("in")).unwrap();
    if let Some(n) = replicas {
        b.shard(a, Shard::by_fields(&["k"]).replicas(n)).unwrap();
    }
    (b.build().unwrap(), c)
}

fn collected(c: &Collector) -> Vec<(i64, i64)> {
    c.tokens()
        .iter()
        .map(|t| (t.int_field("k").unwrap(), t.int_field("v").unwrap()))
        .collect()
}

fn run_under(name: &str, wf: &mut Workflow) {
    match name {
        "threaded" => ThreadedDirector::new().run(wf).map(|_| ()).unwrap(),
        "pool" => PoolDirector::new()
            .with_workers(4)
            .run(wf)
            .map(|_| ())
            .unwrap(),
        "ddf" => DdfDirector::new().run(wf).map(|_| ()).unwrap(),
        "de" => DeDirector::new().run(wf).map(|_| ()).unwrap(),
        "scwf" => {
            let cost = TableCostModel::uniform(Micros(10), Micros(1));
            ScwfDirector::virtual_time(Box::new(FifoScheduler::new(5)), Box::new(cost))
                .run(wf)
                .map(|_| ())
                .unwrap()
        }
        other => panic!("unknown director {other}"),
    }
}

#[test]
fn sharded_run_matches_unsharded_in_order_under_every_director() {
    for director in ["threaded", "pool", "ddf", "de", "scwf"] {
        for replicas in [2, 3] {
            let (mut wf, c) = build(Some(replicas));
            run_under(director, &mut wf);
            assert_eq!(
                collected(&c),
                expected(),
                "director {director}, {replicas} replicas"
            );
        }
    }
}

#[test]
fn expansion_generates_splitter_replicas_and_merge() {
    let (wf, _c) = build(Some(3));
    // src + splitter (in the base slot) + sink + 3 replicas + merge.
    assert_eq!(wf.actor_count(), 7);
    let groups = wf.shard_groups();
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].base, "sum");
    assert_eq!(groups[0].replicas.len(), 3);
    let dot = wf.to_dot();
    assert!(dot.contains("cluster_shard0"), "dot clusters the group:\n{dot}");
    assert!(dot.contains("sum x3"), "cluster label names the base:\n{dot}");
}

#[test]
fn replica_count_one_is_a_structural_noop() {
    let (wf, c) = build(Some(1));
    let (plain, _) = build(None);
    assert_eq!(wf.actor_count(), plain.actor_count());
    assert!(wf.shard_groups().is_empty());
    let mut wf = wf;
    ThreadedDirector::new().run(&mut wf).unwrap();
    assert_eq!(collected(&c), expected());
}

#[test]
fn sdf_rejects_sharded_graphs_cleanly() {
    // Replicas declare no SDF rates, so schedule compilation must fail
    // with a clear error instead of mis-scheduling the expanded graph.
    let (mut wf, _c) = build(Some(2));
    match SdfDirector::new().run(&mut wf) {
        Err(Error::Sdf(_)) => {}
        other => panic!("expected SDF rate error, got {other:?}"),
    }
}

#[test]
fn engine_configure_runs_sharded_graph_with_shard_telemetry() {
    use confluence::prelude::{ChannelPolicy, Engine, ExecConfig};
    let (wf, c) = build(Some(2));
    let mut engine = Engine::new(wf).configure(
        ExecConfig::new()
            .workers(2)
            .channel_policy(ChannelPolicy::unbounded()),
    );
    engine.run().unwrap();
    assert_eq!(collected(&c), expected());
    let snap = engine.snapshot();
    let shards = snap.shards();
    assert_eq!(shards.len(), 1);
    assert_eq!(shards[0].base, "sum");
    assert_eq!(shards[0].replicas.len(), 2);
    assert!(shards[0].total_fires() > 0);
    assert!(shards[0].imbalance() >= 1.0);
    let prom = snap.to_prometheus();
    assert!(
        prom.contains("confluence_shard_replica_fires_total{shard=\"sum\",replica=\"0\"}"),
        "per-shard series exported:\n{prom}"
    );
    assert!(prom.contains("confluence_shard_replica_queue_high_water{shard=\"sum\",replica=\"1\"}"));
}

mod merge_order {
    use std::collections::VecDeque;

    use confluence::core::actor::{Actor, FireContext};
    use confluence::core::event::CwEvent;
    use confluence::core::shard::OrderedMerge;
    use confluence::core::time::Timestamp;
    use confluence::core::token::Token;
    use confluence::core::window::Window;
    use proptest::prelude::*;

    /// Minimal context: one pre-loaded window per fire, captured output.
    struct Ctx {
        inbox: VecDeque<(usize, Window)>,
        out: Vec<Token>,
    }

    impl Ctx {
        fn push(&mut self, port: usize, token: Token) {
            self.inbox.push_back((
                port,
                Window {
                    group: Token::Unit,
                    events: vec![CwEvent::external(token, Timestamp(0))],
                    formed_at: Timestamp(0),
                    timed_out: false,
                },
            ));
        }
    }

    impl FireContext for Ctx {
        fn now(&self) -> Timestamp {
            Timestamp(0)
        }
        fn get(&mut self, port: usize) -> Option<Window> {
            let at = self.inbox.iter().position(|(p, _)| *p == port)?;
            self.inbox.remove(at).map(|(_, w)| w)
        }
        fn get_any(&mut self) -> Option<(usize, Window)> {
            self.inbox.pop_front()
        }
        fn emit(&mut self, _port: usize, token: Token) {
            self.out.push(token);
        }
    }

    fn data(seq: i64, j: i64) -> Token {
        Token::record().field("seq", seq).field("j", j).build()
    }

    fn ack(seq: i64, count: usize) -> Token {
        Token::record()
            .field("seq", seq)
            .field("count", count as i64)
            .build()
    }

    proptest! {
        /// For any assignment of firing groups to replicas and ANY
        /// interleaving of the replica delivery streams (each replica's own
        /// stream stays FIFO — that much the channels guarantee), the merge
        /// emits every token exactly once, in global dispatch-seq order.
        #[test]
        fn merge_restores_dispatch_order_under_adversarial_interleaving(
            groups in prop::collection::vec((0usize..4, 0usize..3), 1..25),
            replicas in 2usize..5,
            picks in prop::collection::vec(0usize..64, 0..256),
        ) {
            // Per-replica FIFO delivery queues: data tokens then the ack,
            // groups in seq order — exactly what a replica emits.
            let mut queues: Vec<VecDeque<(usize, Token)>> =
                (0..replicas).map(|_| VecDeque::new()).collect();
            let mut expected = Vec::new();
            for (i, (rsel, count)) in groups.iter().enumerate() {
                let seq = i as i64;
                let r = rsel % replicas;
                for j in 0..*count {
                    queues[r].push_back((r, data(seq, j as i64)));
                    expected.push((seq, j as i64));
                }
                queues[r].push_back((replicas + r, ack(seq, *count)));
            }
            let mut merge = OrderedMerge::new(replicas);
            let mut ctx = Ctx { inbox: VecDeque::new(), out: Vec::new() };
            let mut k = 0usize;
            loop {
                let live: Vec<usize> =
                    (0..replicas).filter(|&r| !queues[r].is_empty()).collect();
                if live.is_empty() {
                    break;
                }
                let pick = picks.get(k).copied().unwrap_or(k);
                k += 1;
                let r = live[pick % live.len()];
                let (port, token) = queues[r].pop_front().unwrap();
                ctx.push(port, token);
                merge.fire(&mut ctx).unwrap();
            }
            merge.finish(&mut ctx).unwrap();
            let emitted: Vec<(i64, i64)> = ctx
                .out
                .iter()
                .map(|t| (t.int_field("seq").unwrap(), t.int_field("j").unwrap()))
                .collect();
            prop_assert_eq!(emitted, expected);
        }
    }
}

#[test]
fn sharding_a_stateful_nonreplicable_actor_fails_at_build() {
    struct Opaque;
    impl Actor for Opaque {
        fn signature(&self) -> IoSignature {
            IoSignature::transform("in", "out")
        }
        fn fire(&mut self, _ctx: &mut dyn FireContext) -> Result<()> {
            Ok(())
        }
    }
    let mut b = WorkflowBuilder::new("opaque");
    let s = b.add_actor("src", VecSource::new(vec![rec(0, 0)]));
    let a = b.add_actor("op", Opaque);
    b.link(s, a.input(0)).unwrap();
    b.shard(a, Shard::by_fields(&["k"]).replicas(2)).unwrap();
    let err = b.build().unwrap_err();
    assert!(
        format!("{err}").contains("replicate"),
        "error should point at Actor::replicate: {err}"
    );
}
