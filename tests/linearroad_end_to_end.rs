//! End-to-end: the full Linear Road continuous workflow under the
//! STAFiLOS scheduled director in virtual time, validated against the
//! engine-independent golden model.

use confluence::core::director::Director;
use confluence::core::time::Micros;
use confluence::linearroad::{self, golden, LrOptions, TollNotification, Workload, WorkloadConfig};
use confluence::sched::cost::TableCostModel;
use confluence::sched::policies::{FifoScheduler, QbsScheduler, RbScheduler, RrScheduler};
use confluence::sched::{Scheduler, ScwfDirector};

fn cheap_cost() -> Box<TableCostModel> {
    // Light costs: the system stays far below saturation, so outputs are
    // timely and comparable to the golden model.
    Box::new(TableCostModel::uniform(Micros(20), Micros(2)))
}

fn run_with(policy: Box<dyn Scheduler>, composite: bool) -> (linearroad::LinearRoad, Workload) {
    let workload = Workload::generate(WorkloadConfig::tiny());
    let lr = linearroad::build(
        &workload,
        &LrOptions {
            composite_subworkflows: composite,
            ..LrOptions::default()
        },
    )
    .unwrap();
    let mut lr = lr;
    let mut director = ScwfDirector::virtual_time(policy, cheap_cost());
    director.run(&mut lr.workflow).unwrap();
    (lr, workload)
}

fn toll_agreement(lr: &linearroad::LinearRoad, workload: &Workload) -> (usize, usize, f64) {
    let gold = golden::compute(workload);
    let gold_idx = gold.toll_index();
    let got: Vec<TollNotification> = lr
        .toll_output
        .items()
        .iter()
        .map(|i| TollNotification::from_token(&i.token).unwrap())
        .collect();
    let mut matched = 0;
    for n in &got {
        if let Some(&toll) = gold_idx.get(&(n.carid, n.time)) {
            if (toll - n.toll).abs() < 1e-6 {
                matched += 1;
            }
        }
    }
    (matched, got.len(), gold.tolls.len() as f64)
}

#[test]
fn scwf_fifo_matches_golden_model() {
    let (lr, workload) = run_with(Box::new(FifoScheduler::new(5)), true);
    let (matched, got, expected) = toll_agreement(&lr, &workload);
    assert!(got > 0, "toll notifications were produced");
    // Every engine notification corresponds to a golden segment crossing,
    // and the vast majority carry the exact golden toll.
    assert!(
        matched as f64 >= 0.85 * got as f64,
        "only {matched}/{got} tolls agree with the golden model"
    );
    // Coverage: the engine found (nearly) all crossings.
    assert!(
        got as f64 >= 0.9 * expected,
        "engine produced {got} of {expected} expected notifications"
    );

    // Accidents flow end-to-end: rows in the store and alerts at the output.
    let gold = golden::compute(&workload);
    assert!(!gold.accidents.is_empty());
    let engine_accidents = lr
        .store
        .read(|s| s.table("accidents").map(|t| t.len()).unwrap_or(0));
    assert!(engine_accidents > 0, "accident recorded in the store");
    assert!(
        !lr.accident_output.is_empty(),
        "cars near the accident were alerted"
    );
    // QoS sanity: under light load, responses are sub-second.
    let mean = lr.toll_output.mean_latency().unwrap();
    assert!(mean < Micros::from_secs(1), "mean response {mean} too high");
}

#[test]
fn all_policies_produce_equivalent_outputs() {
    let policies: Vec<(&str, Box<dyn Scheduler>)> = vec![
        ("fifo", Box::new(FifoScheduler::new(5))),
        ("qbs", Box::new(QbsScheduler::new(500, 5))),
        ("rr", Box::new(RrScheduler::new(20_000, 5))),
        ("rb", Box::new(RbScheduler::new())),
    ];
    let mut reference: Option<Vec<(i64, i64, i64)>> = None;
    for (name, policy) in policies {
        let (lr, _workload) = run_with(policy, false);
        let mut got: Vec<(i64, i64, i64)> = lr
            .toll_output
            .items()
            .iter()
            .map(|i| {
                let n = TollNotification::from_token(&i.token).unwrap();
                (n.carid, n.time, n.seg)
            })
            .collect();
        got.sort_unstable();
        got.dedup();
        match &reference {
            None => reference = Some(got),
            Some(r) => {
                // Scheduling changes *when* things run, not *what* the
                // workflow computes: the set of notified crossings matches.
                assert_eq!(r, &got, "policy {name} diverged in outputs");
            }
        }
    }
}

#[test]
fn composite_and_flat_subworkflows_agree() {
    let (with, workload) = run_with(Box::new(FifoScheduler::new(5)), true);
    let (without, _) = run_with(Box::new(FifoScheduler::new(5)), false);
    let gold = golden::compute(&workload);
    assert!(!gold.accidents.is_empty());
    let a = with
        .store
        .read(|s| s.table("accidents").map(|t| t.len()).unwrap_or(0));
    let b = without
        .store
        .read(|s| s.table("accidents").map(|t| t.len()).unwrap_or(0));
    assert_eq!(a, b, "two-level hierarchy must not change detection");
    assert_eq!(with.toll_output.len(), without.toll_output.len());
}
