//! Minimal in-tree stand-in for the `crossbeam` crate. The build
//! environment has no network access to a crates registry, so the
//! workspace vendors the slice it uses: `channel::{unbounded, Sender,
//! Receiver, TryRecvError}`, delegated to `std::sync::mpsc`.

pub mod channel {
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    pub struct Sender<T> {
        inner: std::sync::mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    pub struct Receiver<T> {
        inner: std::sync::mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        pub fn try_iter(&self) -> std::sync::mpsc::TryIter<'_, T> {
            self.inner.try_iter()
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn send_and_drain() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        drop(tx);
        drop(tx2);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
    }
}
