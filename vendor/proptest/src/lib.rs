//! Minimal in-tree stand-in for the `proptest` crate. The build
//! environment has no network access to a crates registry, so the
//! workspace vendors the slice its property tests use: the `proptest!`
//! macro, range/tuple/vec strategies, `prop_map`, `prop_oneof!`,
//! `prop_assume!`, and the `prop_assert*` family.
//!
//! Cases are generated from a deterministic per-test seed (FNV-1a of the
//! test name), so failures reproduce exactly on re-run. There is **no
//! shrinking**: a failing case panics with the plain assert message. Set
//! the case count per block with `#![proptest_config(...)]` as usual.

pub mod test_runner {
    /// Deterministic SplitMix64 generator driving case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> TestRng {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Marker returned by `prop_assume!` rejections; the runner skips the
    /// case (no retry accounting — the case budget is fixed).
    #[derive(Debug)]
    pub struct Reject;

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the offline suite quick
            // while still exercising the properties broadly.
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A value generator. Unlike upstream proptest there is no value
    /// tree / shrinking: `generate` draws one value.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + v) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    pub type BoxedGen<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// Uniform choice between boxed alternatives — the `prop_oneof!` body.
    pub struct Union<V> {
        cases: Vec<BoxedGen<V>>,
    }

    impl<V> Union<V> {
        pub fn new(cases: Vec<BoxedGen<V>>) -> Self {
            assert!(!cases.is_empty(), "prop_oneof! needs at least one case");
            Union { cases }
        }
    }

    pub fn union_case<S>(s: S) -> BoxedGen<S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(move |rng| s.generate(rng))
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.cases.len());
            (self.cases[i])(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Upstream-compatible `prop::` paths (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @blocks ($cfg) $($rest)* }
    };
    (@blocks ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __pt_cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __pt_rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __pt_case in 0..__pt_cfg.cases {
                let _ = __pt_case;
                #[allow(clippy::redundant_closure_call)]
                let __pt_outcome: ::std::result::Result<(), $crate::test_runner::Reject> =
                    (|| {
                        $crate::__proptest_bind!(__pt_rng $($params)*);
                        {
                            $body
                        }
                        Ok(())
                    })();
                // A Reject (prop_assume! miss) just skips the case.
                let _ = __pt_outcome;
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! {
            @blocks ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident) => {};
    ($rng:ident $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($case:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::union_case($case) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Add(i64),
        Clear,
    }

    fn ops() -> impl Strategy<Value = Vec<Op>> {
        prop::collection::vec(
            prop_oneof![
                (0..100i64).prop_map(Op::Add),
                Just(Op::Clear),
            ],
            0..20,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..9, y in -5i64..5, mut z in 1usize..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5..5).contains(&y));
            z += 1;
            prop_assert!((2..5).contains(&z));
        }

        #[test]
        fn tuples_and_vec(pairs in prop::collection::vec((1u8..6, 0u8..4), 1..6)) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 6);
            for (a, b) in pairs {
                prop_assert!((1..6).contains(&a));
                prop_assert!(b < 4);
            }
        }

        #[test]
        fn assume_skips_without_failing(step in 1usize..10, size in 1usize..10) {
            prop_assume!(step <= size);
            prop_assert!(step <= size);
        }

        #[test]
        fn oneof_hits_every_case(ops in ops()) {
            for op in &ops {
                match op {
                    Op::Add(v) => prop_assert!((0..100).contains(v)),
                    Op::Clear => {}
                }
            }
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_test("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
