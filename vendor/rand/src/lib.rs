//! Minimal in-tree stand-in for the `rand` crate. The build environment
//! has no network access to a crates registry, so the workspace vendors
//! the slice it uses: a deterministic seeded `StdRng` (SplitMix64 core —
//! NOT the upstream ChaCha12, so seeded streams differ from real `rand`,
//! which is fine: the workspace only relies on determinism per seed),
//! `gen_range` over integer and float ranges, and `gen_bool`.

use std::ops::Range;

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling support for the payload types the workspace draws.
pub trait SampleUniform: Sized {
    fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64_unit(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

fn f64_unit(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (range.start as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + f64_unit(rng.next_u64()) * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
        f64::sample(rng, range.start as f64..range.end as f64) as f32
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, passes basic statistical tests, and fully
    /// deterministic from the seed — all this workspace needs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(0..2i64);
            assert!((0..2).contains(&v));
            let f = rng.gen_range(48.0..75.0);
            assert!((48.0..75.0).contains(&f));
            let u = rng.gen_range(5usize..6);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.65)).count();
        assert!((6_000..7_300).contains(&hits), "hits={hits}");
    }
}
