//! Minimal in-tree stand-in for the `parking_lot` crate, backed by
//! `std::sync`. The build environment has no network access to a crates
//! registry, so the workspace vendors the small API slice it actually
//! uses: `Mutex` (panic-free, poison-recovering `lock()` that returns the
//! guard directly), `RwLock` (`read()`/`write()`), and `Condvar` with
//! `wait`/`wait_for`.
//!
//! Semantics match parking_lot where the workspace depends on them:
//! poisoning is transparently ignored (a panicked holder does not poison
//! the lock for everyone else), and guard types deref to the protected
//! value.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            // Poison recovery: parking_lot has no poisoning at all.
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard holding the std guard in an `Option` so `Condvar::wait` can take
/// it out (std's wait consumes the guard) and put the reacquired one back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            *m.lock() = true;
            c.notify_one();
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            c.wait(&mut done);
        }
        assert!(*done);
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(0u32);
        let c = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let res = c.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert_eq!(*g, 0);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1u64);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 2);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }
}
