//! Minimal in-tree stand-in for the `criterion` crate. The build
//! environment has no network access to a crates registry, so the
//! workspace vendors the slice its benches use: `Criterion`,
//! `benchmark_group` with `sample_size`, `Bencher::{iter,
//! iter_with_setup}`, and the `criterion_group!`/`criterion_main!`
//! macros. It times each routine with `std::time::Instant` and prints
//! mean ns/iter — no warm-up modeling, outlier analysis, or HTML
//! reports, but enough to run `cargo bench` end to end and compare runs
//! by eye.

use std::hint::black_box as std_black_box;
use std::sync::Mutex;
use std::time::Instant;

pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// The timing summary of one completed benchmark routine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchResult {
    /// Full label (`group/function` or the bare function name).
    pub name: String,
    /// Mean wall time per iteration in nanoseconds.
    pub mean_ns: u64,
    /// Iterations timed.
    pub iters: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drain the results recorded since the last call — lets a custom
/// `cargo bench` harness post-process timings (ratio checks, JSON
/// artifacts) that real criterion would expose through its output files.
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut *RESULTS.lock().unwrap())
}

/// Smoke mode (`cargo bench -- --test`): run each routine once, just to
/// prove it still works — mirrors real criterion's `--test` flag.
pub fn is_test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name.as_ref(), 10, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &format!("{}/{}", self.name, name.as_ref()),
            self.sample_size,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F>(label: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let samples = if is_test_mode() { 1 } else { samples.min(10) };
    let mut b = Bencher {
        samples: samples as u64,
        iters: 0,
        elapsed_nanos: 0,
    };
    f(&mut b);
    match b.elapsed_nanos.checked_div(b.iters) {
        None => println!("{label}: no iterations recorded"),
        Some(per_iter) => {
            println!("{label}: {per_iter} ns/iter ({} iters)", b.iters);
            RESULTS.lock().unwrap().push(BenchResult {
                name: label.to_string(),
                mean_ns: per_iter,
                iters: b.iters,
            });
        }
    }
}

pub struct Bencher {
    samples: u64,
    iters: u64,
    elapsed_nanos: u64,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(routine());
            self.elapsed_nanos += start.elapsed().as_nanos() as u64;
            self.iters += 1;
        }
    }

    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.elapsed_nanos += start.elapsed().as_nanos() as u64;
            self.iters += 1;
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("iter", |b| b.iter(|| black_box(2u64 + 2)));
        g.bench_function("iter_with_setup", |b| {
            b.iter_with_setup(|| vec![1u64, 2, 3], |v| v.iter().sum::<u64>())
        });
        g.finish();
        c.bench_function("top_level", |b| b.iter(|| black_box(1u8)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_all_targets() {
        benches();
    }

    #[test]
    fn results_are_recorded_and_drained() {
        let _ = take_results();
        let mut c = Criterion::default();
        c.bench_function("recorded", |b| b.iter(|| black_box(7u64 * 6)));
        let results = take_results();
        let r = results.iter().find(|r| r.name == "recorded").unwrap();
        assert!(r.iters >= 1);
        assert!(take_results().is_empty(), "drained");
    }
}
