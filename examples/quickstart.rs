//! Quickstart: build a small continuous workflow and run it under the
//! STAFiLOS scheduled director in virtual time.
//!
//! A sensor stream of temperature readings flows into a sliding window
//! average; readings above a threshold raise alerts. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use confluence::core::actor::IoSignature;
use confluence::core::actors::{Collector, FnActor, TimedSource};
use confluence::core::graph::WorkflowBuilder;
use confluence::core::time::{Micros, Timestamp};
use confluence::core::token::Token;
use confluence::core::window::WindowSpec;
use confluence::sched::cost::TableCostModel;
use confluence::sched::policies::QbsScheduler;
use confluence::sched::ScwfDirector;
use confluence::Engine;

fn main() -> confluence::prelude::Result<()> {
    // 1. An external stream: one temperature reading every 100 ms.
    let readings: Vec<(Timestamp, Token)> = (0..50)
        .map(|i| {
            let temp = 20.0 + (i as f64 * 0.7).sin() * 8.0 + i as f64 * 0.2;
            (
                Timestamp::from_millis(i * 100),
                Token::record().field("sensor", 1).field("temp", temp).build(),
            )
        })
        .collect();

    // 2. The workflow: source → sliding average → alert filter → sink.
    let alerts = Collector::new();
    let averages = Collector::new();
    let mut b = WorkflowBuilder::new("quickstart");
    let src = b.add_actor("sensor", TimedSource::new(readings));
    let avg = b.add_actor(
        "avg",
        FnActor::new(IoSignature::transform("in", "out"), |w, emit| {
            let mut sum = 0.0;
            for t in w.tokens() {
                sum += t.float_field("temp")?;
            }
            emit(0, Token::Float(sum / w.len() as f64));
            Ok(())
        }),
    );
    let alarm = b.add_actor(
        "alarm",
        confluence::core::actors::Filter::new(|t: &Token| Ok(t.as_float()? > 27.0)),
    );
    let avg_sink = b.add_actor("avg_sink", averages.actor());
    let alert_sink = b.add_actor("alert_sink", alerts.actor());

    // The paper's window semantics, on the avg actor's input:
    // {Size: 5 tokens, Step: 1 token}.
    b.connect_windowed(src, "out", avg, "in", WindowSpec::tuples(5, 1))?;
    b.connect(avg, "out", alarm, "in")?;
    b.connect(avg, "out", avg_sink, "in")?;
    b.connect(alarm, "out", alert_sink, "in")?;
    b.set_priority(alert_sink, 5); // alerts are the urgent output
    let workflow = b.build()?;

    // 3. Run under the QBS scheduler in virtual time, through the engine
    // facade: telemetry is collected automatically.
    let policy = Box::new(QbsScheduler::new(500, 5));
    let cost = Box::new(TableCostModel::uniform(Micros(50), Micros(5)));
    let mut engine = Engine::new(workflow).with_director(ScwfDirector::virtual_time(policy, cost));
    let report = engine.run()?;

    println!("firings: {}, events routed: {}", report.firings, report.events_routed);
    println!("window averages: {}", averages.len());
    println!("alerts: {}", alerts.len());
    for t in alerts.tokens().iter().take(5) {
        println!("  ALERT: rolling average {t}");
    }

    // 4. Per-actor metrics come from the same run, no extra plumbing.
    println!("\n{}", engine.snapshot().render_table());
    assert!(!averages.is_empty());
    Ok(())
}
