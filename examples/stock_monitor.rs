//! A business-domain monitoring workflow (paper §1's motivating class):
//! stock ticks stream in over push communication; a per-symbol sliding
//! VWAP (volume-weighted average price) is maintained, and crossings of a
//! trading band emit signals — all executed in *real time* under the
//! thread-based PNCWF director with data pushed from a producer thread.
//!
//! ```text
//! cargo run --example stock_monitor
//! ```

use std::thread;
use std::time::Duration;

use confluence::core::actor::IoSignature;
use confluence::core::actors::{Collector, FnActor, PushSource, Router};
use confluence::core::director::threaded::ThreadedDirector;
use confluence::core::graph::WorkflowBuilder;
use confluence::core::token::Token;
use confluence::core::window::{GroupBy, WindowSpec};
use confluence::Engine;

fn tick(symbol: &str, price: f64, volume: i64) -> Token {
    Token::record()
        .field("symbol", symbol)
        .field("price", price)
        .field("volume", volume)
        .build()
}

fn main() -> confluence::prelude::Result<()> {
    let (source, feed) = PushSource::new();
    let buys = Collector::new();
    let sells = Collector::new();

    let mut b = WorkflowBuilder::new("stock-monitor");
    let src = b.add_actor("ticks", source);
    let vwap = b.add_actor(
        "vwap",
        FnActor::new(IoSignature::transform("in", "out"), |w, emit| {
            let mut pv = 0.0;
            let mut vol = 0.0;
            for t in w.tokens() {
                pv += t.float_field("price")? * t.int_field("volume")? as f64;
                vol += t.int_field("volume")? as f64;
            }
            let last = w.events.last().expect("non-empty window");
            let symbol = last.token.get("symbol")?.clone();
            let price = last.token.float_field("price")?;
            emit(
                0,
                Token::record()
                    .field("symbol", symbol)
                    .field("vwap", pv / vol)
                    .field("price", price)
                    .build(),
            );
            Ok(())
        }),
    );
    let signal = b.add_actor(
        "signal",
        Router::new(&["buy", "sell"], |t: &Token| {
            let price = t.float_field("price")?;
            let vwap = t.float_field("vwap")?;
            Ok(if price < vwap * 0.99 {
                Some(0) // cheap vs the band: buy signal
            } else if price > vwap * 1.01 {
                Some(1) // rich: sell signal
            } else {
                None
            })
        }),
    );
    let buy_sink = b.add_actor("buys", buys.actor());
    let sell_sink = b.add_actor("sells", sells.actor());

    // Per-symbol sliding window of the last 8 ticks.
    b.connect_windowed(
        src,
        "out",
        vwap,
        "in",
        WindowSpec::tuples(8, 1).group_by(GroupBy::fields(&["symbol"])),
    )?;
    b.connect(vwap, "out", signal, "in")?;
    // Ports resolve by name or by index: the router's outputs are
    // "buy" (#0) and "sell" (#1).
    b.connect(signal, 0, buy_sink, "in")?;
    b.connect(signal, "sell", sell_sink, 0)?;
    let workflow = b.build()?;

    // The producer: a market feed pushing ticks from another thread while
    // the workflow is live (the push-communication model of CWfs).
    let producer = thread::spawn(move || {
        let symbols = ["CWF", "STAF"];
        for i in 0..200u32 {
            let base = if i % 2 == 0 { 100.0 } else { 40.0 };
            let wobble = ((i as f64) * 0.9).sin() * 3.0;
            let spike = if i % 37 == 0 { 4.0 } else { 0.0 };
            feed.push(tick(
                symbols[(i % 2) as usize],
                base + wobble + spike,
                100 + (i as i64 % 7) * 10,
            ));
            if i % 20 == 0 {
                thread::sleep(Duration::from_millis(1));
            }
        }
        // Dropping the handle ends the stream and the run.
    });

    let mut engine = Engine::new(workflow).with_director(ThreadedDirector::new());
    engine.run()?;
    producer.join().expect("producer finishes");

    println!("buy signals:  {}", buys.len());
    println!("sell signals: {}", sells.len());
    for t in buys.tokens().iter().take(3) {
        println!("  BUY  {t}");
    }
    for t in sells.tokens().iter().take(3) {
        println!("  SELL {t}");
    }
    println!("\n{}", engine.snapshot().render_table());
    assert!(buys.len() + sells.len() > 0, "the band was crossed");
    Ok(())
}
