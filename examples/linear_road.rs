//! Run the Linear Road benchmark end-to-end and print its QoS report —
//! the paper's evaluation in miniature.
//!
//! ```text
//! cargo run --release --example linear_road
//! ```

use confluence::linearroad::{self, golden, LrOptions, Workload, WorkloadConfig};
use confluence::sched::policies::QbsScheduler;
use confluence::sched::ScwfDirector;
use confluence::Engine;

fn main() -> confluence::prelude::Result<()> {
    // A quarter-scale workload keeps the example quick even in debug mode.
    let config = WorkloadConfig {
        l_rating: 0.125,
        ..WorkloadConfig::paper()
    };
    let workload = Workload::generate(config);
    println!(
        "workload: {} position reports over {} s",
        workload.len(),
        workload.config.duration_secs
    );

    let lr = linearroad::build(&workload, &LrOptions::default())?;
    let policy = Box::new(QbsScheduler::new(500, 5));
    let cost = Box::new(confluence::linearroad::cost::staf_cost_model());
    let mut engine = Engine::new(lr.workflow).with_director(ScwfDirector::virtual_time(policy, cost));
    let report = engine.run()?;

    println!("firings: {}, events routed: {}", report.firings, report.events_routed);
    println!("\n{}", engine.snapshot().render_table());
    println!("toll notifications:     {}", lr.toll_output.len());
    println!("accident alerts:        {}", lr.accident_output.len());
    let accidents = lr
        .store
        .read(|s| s.table("accidents").map(|t| t.len()).unwrap_or(0));
    println!("accidents in the store: {accidents}");

    let series = confluence::linearroad::ResponseSeries::new(lr.toll_output.latency_samples());
    println!("\nresponse time at TollNotification:");
    println!("  mean: {:.3} s   p95: {:.3} s", series.mean_secs(), series.percentile_secs(95.0));
    match series.thrash_point(10, 4.0, 2) {
        Some(t) => println!("  thrashed at {t} s"),
        None => println!("  never thrashed (offered load stayed under capacity)"),
    }

    // Validate against the engine-independent golden model.
    let gold = golden::compute(&workload);
    let idx = gold.toll_index();
    let mut agree = 0usize;
    let mut total = 0usize;
    for item in lr.toll_output.items() {
        let n = confluence::linearroad::TollNotification::from_token(&item.token)?;
        total += 1;
        if idx
            .get(&(n.carid, n.time))
            .is_some_and(|&t| (t - n.toll).abs() < 1e-6)
        {
            agree += 1;
        }
    }
    println!(
        "\ngolden-model agreement: {agree}/{total} tolls exact ({:.1}%)",
        100.0 * agree as f64 / total.max(1) as f64
    );
    Ok(())
}
