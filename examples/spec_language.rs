//! The declarative workflow specification language: describe the workflow
//! as text (Kepler's MoML analog), instantiate actors through a registry,
//! and run under any director — specification fully decoupled from
//! execution.
//!
//! ```text
//! cargo run --example spec_language
//! ```

use confluence::core::actors::{Collector, TimedSource};
use confluence::core::spec::{parse, ActorRegistry};
use confluence::core::time::{Micros, Timestamp};
use confluence::core::token::Token;
use confluence::sched::cost::TableCostModel;
use confluence::sched::policies::RrScheduler;
use confluence::sched::ScwfDirector;
use confluence::Engine;

const SPEC: &str = r#"
    workflow sensor-grid {
        actor feed    = readings()
        actor uniq    = dedup(keys: [sensor, value], capacity: 1000)
        actor limiter = throttle(max: 3, per_ms: 1000)
        actor alerts  = collect_alerts()
        actor audit   = collect_audit()

        # Per-sensor sliding windows of 4 readings; used readings are
        # consumed, and whatever slides out goes to the audit activity.
        connect feed.out -> uniq.in
        connect uniq.out -> limiter.in
            window tuples(4, 4) group_by(sensor) delete_used timeout(2s)
        connect limiter.out -> alerts.in

        priority alerts = 5
        expired limiter.in -> audit.in
    }
"#;

fn main() -> confluence::prelude::Result<()> {
    // The registry binds the spec's actor types to real constructors —
    // sources and sinks close over this process's data and collectors.
    let alerts = Collector::new();
    let audit = Collector::new();
    let mut registry = ActorRegistry::with_standard_actors();
    {
        let schedule: Vec<(Timestamp, Token)> = (0..40u64)
            .map(|i| {
                (
                    Timestamp::from_millis(i * 100),
                    Token::record()
                        .field("sensor", (i % 3) as i64)
                        .field("value", ((i * 7) % 5) as i64)
                        .build(),
                )
            })
            .collect();
        let schedule = std::sync::Mutex::new(Some(schedule));
        registry.register("readings", move |_p| {
            let data = schedule.lock().unwrap().take().unwrap_or_default();
            Ok(Box::new(TimedSource::new(data)))
        });
        let a = alerts.clone();
        registry.register("collect_alerts", move |_p| Ok(Box::new(a.actor())));
        let au = audit.clone();
        registry.register("collect_audit", move |_p| Ok(Box::new(au.actor())));
    }

    let workflow = parse(SPEC, &registry)?;
    println!("parsed `{}` with {} actors", workflow.name(), workflow.actor_count());
    println!("\nGraphviz:\n{}", workflow.to_dot());

    let mut engine = Engine::new(workflow).with_director(ScwfDirector::virtual_time(
        Box::new(RrScheduler::new(20_000, 5)),
        Box::new(TableCostModel::uniform(Micros(40), Micros(5))),
    ));
    let report = engine.run()?;
    println!("firings: {}  events: {}", report.firings, report.events_routed);
    println!("alert windows delivered: {}", alerts.len());
    println!("expired readings audited: {}", audit.len());
    let snap = engine.snapshot();
    let limiter = snap.actor("limiter").expect("limiter actor is present");
    println!("limiter expired {} readings into the audit path", limiter.events_expired);
    assert!(!alerts.is_empty());
    Ok(())
}
