//! Multiple continuous workflows under two-level scheduling (paper §5,
//! Figure 9): each workflow runs its own local STAFiLOS policy while a
//! global scheduler distributes CPU capacity between the instances — and
//! the ConnectionController-style interface pauses/resumes them.
//!
//! ```text
//! cargo run --example multi_workflow
//! ```

use std::sync::Arc;

use confluence::core::actors::{LatencyProbe, TimedSource};
use confluence::core::graph::{Workflow, WorkflowBuilder};
use confluence::core::time::{Micros, Timestamp};
use confluence::core::token::Token;
use confluence::sched::cost::TableCostModel;
use confluence::sched::multi::MultiWorkflowExecutor;
use confluence::sched::policies::{FifoScheduler, QbsScheduler};
use confluence::{MetricsRecorder, Telemetry};

fn stream_workflow(events: u64, period_us: u64) -> (Workflow, LatencyProbe) {
    let probe = LatencyProbe::new();
    let schedule: Vec<(Timestamp, Token)> = (0..events)
        .map(|i| (Timestamp(i * period_us), Token::Int(i as i64)))
        .collect();
    let mut b = WorkflowBuilder::new("stream");
    let s = b.add_actor("src", TimedSource::new(schedule));
    let k = b.add_actor("probe", probe.actor());
    b.chain(&[s, k]).unwrap();
    (b.build().unwrap(), probe)
}

fn main() -> confluence::prelude::Result<()> {
    let mut exec = MultiWorkflowExecutor::new(Micros(1_000));

    // Two overloaded monitoring workflows compete for one (virtual) CPU;
    // the premium instance holds 4× the capacity share.
    let (wf_premium, p_premium) = stream_workflow(2_000, 100);
    let (wf_basic, p_basic) = stream_workflow(2_000, 100);
    let recorder = Arc::new(MetricsRecorder::for_workflow(&wf_premium));
    let premium = exec.add_workflow(
        "premium",
        wf_premium,
        Box::new(QbsScheduler::new(500, 5)),
        Box::new(TableCostModel::uniform(Micros(140), Micros::ZERO)),
        4,
    );
    let basic = exec.add_workflow(
        "basic",
        wf_basic,
        Box::new(FifoScheduler::new(5)),
        Box::new(TableCostModel::uniform(Micros(140), Micros::ZERO)),
        1,
    );

    // Observe the premium instance: per-actor metrics flow into a
    // recorder while the global scheduler slices CPU between instances.
    exec.instrument(premium, Telemetry::new(recorder.clone()))?;

    exec.run()?;

    let m_premium = p_premium.mean_latency().expect("premium produced output");
    let m_basic = p_basic.mean_latency().expect("basic produced output");
    println!("premium (share 4, {}): mean response {m_premium}", exec.manager(premium).policy_name());
    println!("basic   (share 1, {}): mean response {m_basic}", exec.manager(basic).policy_name());
    println!(
        "capacity shares bite: premium is {:.1}x faster",
        m_basic.as_micros() as f64 / m_premium.as_micros() as f64
    );
    println!("\npremium instance metrics:\n{}", recorder.snapshot().render_table());
    assert!(m_premium < m_basic);
    Ok(())
}
