//! A supply-chain management workflow — the paper's business-domain
//! application built on CONFLuEnCE ([20] in its references): orders and
//! shipments stream in from different systems; the workflow keeps a live
//! inventory in the relational store, reacts to stock-outs, and uses
//! window semantics to batch restock decisions.
//!
//! ```text
//! cargo run --example supply_chain
//! ```

use confluence::core::actor::IoSignature;
use confluence::core::actors::{Collector, FnActor, TimedSource};
use confluence::core::graph::WorkflowBuilder;
use confluence::core::time::{Micros, Timestamp};
use confluence::core::token::Token;
use confluence::core::window::{GroupBy, WindowSpec};
use confluence::relstore::expr::{col, lit};
use confluence::relstore::{Schema, StoreHandle, ValueType};
use confluence::sched::cost::TableCostModel;
use confluence::sched::policies::RbScheduler;
use confluence::sched::ScwfDirector;
use confluence::Engine;

fn order(item: &str, qty: i64, t: u64) -> (Timestamp, Token) {
    (
        Timestamp::from_millis(t),
        Token::record().field("item", item).field("qty", qty).build(),
    )
}

fn main() -> confluence::prelude::Result<()> {
    // Inventory lives in the embedded relational store.
    let store = StoreHandle::new();
    store.write(|s| {
        s.create_table(
            "inventory",
            Schema::builder()
                .column("item", ValueType::Str)
                .column("stock", ValueType::Int)
                .primary_key(&["item"])
                .build()?,
        )
    })?;
    for (item, stock) in [("widget", 60i64), ("gadget", 12)] {
        store.write(|s| {
            s.table_mut("inventory")?
                .insert(vec![item.into(), stock.into()])
        })?;
    }

    // Two external streams: customer orders and inbound shipments.
    let orders: Vec<(Timestamp, Token)> = (0..40u64)
        .map(|i| {
            let item = if i % 3 == 0 { "gadget" } else { "widget" };
            order(item, 1 + (i % 4) as i64, i * 50)
        })
        .collect();
    let shipments: Vec<(Timestamp, Token)> =
        vec![order("widget", 30, 700), order("gadget", 10, 1_100)];

    let confirmations = Collector::new();
    let restocks = Collector::new();

    let mut b = WorkflowBuilder::new("supply-chain");
    let order_src = b.add_actor("orders", TimedSource::new(orders));
    let shipment_src = b.add_actor("shipments", TimedSource::new(shipments));

    // Fulfilment: decrement stock; confirm or reject each order.
    let store_f = store.clone();
    let fulfil = b.add_actor(
        "fulfil",
        FnActor::new(
            IoSignature::new(&["orders", "shipments"], &["confirmed", "stockout"]),
            move |w, emit| {
                for event in &w.events {
                    let t = &event.token;
                    let item = t.get("item")?.as_str()?.to_string();
                    let qty = t.int_field("qty")?;
                    let is_shipment = qty >= 10; // shipments are bulk
                    let stock = store_f.read(|s| -> confluence::prelude::Result<i64> {
                        let rows = s
                            .table("inventory")?
                            .select(Some(&col("item").eq(lit(item.as_str()))))?;
                        Ok(rows.first().map(|r| r[1].as_int()).transpose()?.unwrap_or(0))
                    })?;
                    let new_stock = if is_shipment { stock + qty } else { stock - qty };
                    if !is_shipment && new_stock < 0 {
                        emit(1, t.clone()); // stock-out
                        continue;
                    }
                    store_f.write(|s| {
                        s.table_mut("inventory")?
                            .upsert(vec![item.as_str().into(), new_stock.into()])
                    })?;
                    if !is_shipment {
                        emit(0, t.clone());
                    }
                }
                Ok(())
            },
        ),
    );

    // Restock planning: batch stock-outs per item (5-second tumbling
    // windows with a formation timeout) into one purchase order each.
    let plan = b.add_actor(
        "plan-restock",
        FnActor::new(IoSignature::transform("in", "out"), |w, emit| {
            let mut total = 0;
            for t in w.tokens() {
                total += t.int_field("qty")?;
            }
            let item = w.events[0].token.get("item")?.clone();
            emit(
                0,
                Token::record()
                    .field("item", item)
                    .field("purchase", total + 20) // order extra buffer
                    .build(),
            );
            Ok(())
        }),
    );
    let confirm_sink = b.add_actor("confirmed", confirmations.actor());
    let restock_sink = b.add_actor("purchases", restocks.actor());

    b.connect(order_src, "out", fulfil, "orders")?;
    b.connect(shipment_src, "out", fulfil, "shipments")?;
    b.connect(fulfil, "confirmed", confirm_sink, "in")?;
    b.connect_windowed(
        fulfil,
        "stockout",
        plan,
        "in",
        WindowSpec::time(Micros::from_secs(5), Micros::from_secs(5))
            .group_by(GroupBy::fields(&["item"]))
            .with_timeout(Micros::from_secs(5)),
    )?;
    b.connect(plan, "out", restock_sink, "in")?;
    let workflow = b.build()?;

    // Rate-Based scheduling: restock planning is cheap and productive, so
    // the Highest Rate policy keeps it timely.
    let mut engine = Engine::new(workflow).with_director(ScwfDirector::virtual_time(
        Box::new(RbScheduler::new()),
        Box::new(TableCostModel::uniform(Micros(80), Micros(10))),
    ));
    engine.run()?;

    let final_stock: Vec<(String, i64)> = store.read(|s| {
        s.table("inventory")
            .unwrap()
            .iter()
            .map(|r| (r[0].as_str().unwrap().to_string(), r[1].as_int().unwrap()))
            .collect()
    });
    println!("confirmed orders: {}", confirmations.len());
    println!("purchase orders:  {}", restocks.len());
    for t in restocks.tokens() {
        println!("  RESTOCK {t}");
    }
    println!("final inventory:  {final_stock:?}");
    println!("\n{}", engine.snapshot().render_table());
    assert!(!confirmations.is_empty());
    Ok(())
}
